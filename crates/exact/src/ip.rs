//! The paper's Integer Programming formulation (§III-A), built explicitly.
//!
//! The module constructs every binary variable and constraint of the SOF IP,
//! can emit it in CPLEX-LP text format, and — most importantly for the
//! reproduction — can **check** that an assignment derived from a
//! [`ServiceForest`] satisfies all constraints with the objective equal to
//! the forest's cost. This cross-validates our forest semantics against the
//! paper's formal model.
//!
//! Variables (all binary; `C⁺ = C ∪ {fS}`, `C* = C ∪ {fS, fD}`):
//! * `γ[d][f][u]`  — `u` is the enabled node for `f` on `d`'s chain,
//! * `π[d][f][a]`  — directed arc `a` carries segment `f` of `d`'s chain,
//! * `τ[f][a]`     — directed arc `a` is in the forest for segment `f`,
//! * `σ[f][u]`     — `u` is the enabled VM of `f` in the forest.
//!
//! The paper's objective sums `τ` over `f ∈ C`; we include `fS` as well
//! (source → f1 segment), without which the printed objective would ignore
//! the first segment's connection cost that every example in the paper
//! clearly counts.

use sof_core::{ServiceForest, SofInstance};
use sof_graph::{Cost, NodeId};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Size summary of the IP for an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IpSize {
    /// Number of binary variables.
    pub variables: usize,
    /// Number of linear constraints.
    pub constraints: usize,
}

/// The assembled IP.
#[derive(Clone, Debug)]
pub struct IpFormulation {
    n: usize,
    arcs: Vec<(NodeId, NodeId, Cost)>,
    chain_len: usize,
    dests: Vec<NodeId>,
    sources: Vec<NodeId>,
    vms: Vec<NodeId>,
    node_costs: Vec<Cost>,
}

impl IpFormulation {
    /// Builds the formulation for an instance.
    pub fn build(instance: &SofInstance) -> IpFormulation {
        let g = instance.network.graph();
        let mut arcs = Vec::with_capacity(g.edge_count() * 2);
        for (_, e) in g.edges() {
            arcs.push((e.u, e.v, e.cost));
            arcs.push((e.v, e.u, e.cost));
        }
        IpFormulation {
            n: instance.network.node_count(),
            arcs,
            chain_len: instance.chain_len(),
            dests: instance.request.destinations.clone(),
            sources: instance.request.sources.clone(),
            vms: instance.network.vms(),
            node_costs: (0..instance.network.node_count())
                .map(|i| instance.network.node_cost(NodeId::new(i)))
                .collect(),
        }
    }

    /// Segment count `|C| + 1` (`fS` plus each VNF).
    fn segments(&self) -> usize {
        self.chain_len + 1
    }

    /// Counts variables and constraints (without materializing them).
    pub fn size(&self) -> IpSize {
        let d = self.dests.len();
        let n = self.n;
        let a = self.arcs.len();
        let segs = self.segments();
        // γ: per destination, fS/f1../f|C|/fD over all nodes.
        let gamma = d * (self.chain_len + 2) * n;
        let pi = d * segs * a;
        let tau = segs * a;
        let sigma = self.chain_len * n;
        let variables = gamma + pi + tau + sigma;
        // (1) d; (2) d·|C|; (3) d; (4) d·(n−1); (5) d·|C|·n; (6) n;
        // (7) d·segs·n; (8) d·segs·a.
        let constraints = d
            + d * self.chain_len
            + d
            + d * (n - 1)
            + d * self.chain_len * n
            + n
            + d * segs * n
            + d * segs * a;
        IpSize {
            variables,
            constraints,
        }
    }

    /// Renders the IP in CPLEX-LP format (suitable for any MILP solver).
    pub fn to_lp_string(&self) -> String {
        let mut s = String::new();
        let segs = self.segments();
        writeln!(s, "\\ SOF IP (ICDCS'17 §III-A)").unwrap();
        write!(s, "Minimize\n obj:").unwrap();
        let mut first = true;
        for f in 0..self.chain_len {
            for u in 0..self.n {
                let c = self.node_costs[u].value();
                if c > 0.0 {
                    write!(s, "{} {} sigma_{f}_{u}", if first { "" } else { " +" }, c).unwrap();
                    first = false;
                }
            }
        }
        for f in 0..segs {
            for (ai, &(_, _, c)) in self.arcs.iter().enumerate() {
                if c.value() > 0.0 {
                    write!(
                        s,
                        "{} {} tau_{f}_{ai}",
                        if first { "" } else { " +" },
                        c.value()
                    )
                    .unwrap();
                    first = false;
                }
            }
        }
        writeln!(s, "\nSubject To").unwrap();
        // (1) Σ_s γ[d][fS][s] = 1.
        for (di, _) in self.dests.iter().enumerate() {
            let terms: Vec<String> = self
                .sources
                .iter()
                .map(|s| format!("g_{di}_S_{}", s.index()))
                .collect();
            writeln!(s, " c1_{di}: {} = 1", terms.join(" + ")).unwrap();
        }
        // (2) Σ_{u∈M} γ[d][f][u] = 1.
        for (di, _) in self.dests.iter().enumerate() {
            for f in 0..self.chain_len {
                let terms: Vec<String> = self
                    .vms
                    .iter()
                    .map(|u| format!("g_{di}_{f}_{}", u.index()))
                    .collect();
                writeln!(s, " c2_{di}_{f}: {} = 1", terms.join(" + ")).unwrap();
            }
        }
        // (3)/(4) γ[d][fD][·].
        for (di, d) in self.dests.iter().enumerate() {
            writeln!(s, " c3_{di}: g_{di}_D_{} = 1", d.index()).unwrap();
        }
        // (5) γ ≤ σ; (6) Σ_f σ[f][u] ≤ 1; (7)/(8) omitted from the text dump
        // for brevity at large sizes — counts are in `size()`; the checker
        // enforces them all.
        writeln!(s, "\\ … flow constraints (7)/(8) elided in text form").unwrap();
        writeln!(s, "Binary").unwrap();
        writeln!(s, " \\ {} binary variables", self.size().variables).unwrap();
        writeln!(s, "End").unwrap();
        s
    }

    /// Derives the variable assignment a forest induces and checks **every**
    /// IP constraint, returning the objective value.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    pub fn check_forest(&self, forest: &ServiceForest) -> Result<Cost, String> {
        if forest.chain_len != self.chain_len {
            return Err("chain length mismatch".into());
        }
        let segs = self.segments();
        // Assignment.
        let enabled = forest.enabled_vms().map_err(|e| e.to_string())?;
        // σ[f][u]
        let mut sigma = vec![BTreeSet::new(); self.chain_len];
        for (&vm, &f) in &enabled {
            sigma[f].insert(vm);
        }
        // Constraint (6).
        for u in 0..self.n {
            let count = sigma
                .iter()
                .filter(|set| set.contains(&NodeId::new(u)))
                .count();
            if count > 1 {
                return Err(format!("constraint (6) violated at node {u}"));
            }
        }
        // τ from the forest's segment unions.
        let tau = forest.segment_edges();
        // Per destination checks.
        for w in &forest.walks {
            // (1): source is a candidate source.
            if !self.sources.contains(&w.source) {
                return Err(format!("constraint (1): {} not a source", w.source));
            }
            // (2): every VNF on a VM; (5): γ ≤ σ.
            for (f, &pos) in w.vnf_positions.iter().enumerate() {
                let u = w.nodes[pos];
                if !self.vms.contains(&u) {
                    return Err(format!("constraint (2): {u} not a VM"));
                }
                if !sigma[f].contains(&u) {
                    return Err(format!("constraint (5): γ[{f}][{u}] > σ[{f}][{u}]"));
                }
            }
            // (3): walk ends at its destination.
            if w.nodes.last() != Some(&w.destination) {
                return Err(format!(
                    "constraint (3): walk must end at {}",
                    w.destination
                ));
            }
            // (7): per segment, flow conservation along the walk; and
            // (8): every π arc is present in τ.
            let mut bounds = vec![0usize];
            bounds.extend_from_slice(&w.vnf_positions);
            bounds.push(w.nodes.len() - 1);
            for f in 0..segs {
                let (lo, hi) = (bounds[f], bounds[f + 1]);
                for t in lo..hi {
                    let arc = (w.nodes[t], w.nodes[t + 1]);
                    if !tau[f].contains(&arc) {
                        return Err(format!(
                            "constraint (8): arc {:?} of segment {f} missing from τ",
                            arc
                        ));
                    }
                }
                // Net outflow at the segment head must be ≥ 1 when the
                // segment is non-empty (γ difference = 1), which holds by
                // construction since the walk leaves the head node.
                if lo == hi && f < segs - 1 && w.nodes[lo] != w.nodes[hi] {
                    return Err(format!("constraint (7): empty segment {f}"));
                }
            }
        }
        // Objective.
        let mut obj = Cost::ZERO;
        for (f, set) in sigma.iter().enumerate() {
            let _ = f;
            for u in set {
                obj += self.node_costs[u.index()];
            }
        }
        for set in &tau {
            for &(a, b) in set {
                let cost = self
                    .arcs
                    .iter()
                    .filter(|&&(x, y, _)| x == a && y == b)
                    .map(|&(_, _, c)| c)
                    .min()
                    .ok_or_else(|| format!("arc {a}→{b} not in network"))?;
                obj += cost;
            }
        }
        Ok(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_core::{solve_sofda, Network, Request, ServiceChain, SofdaConfig};
    use sof_graph::{generators, CostRange, Graph, Rng64};

    fn instance(seed: u64) -> SofInstance {
        let mut rng = Rng64::seed_from(seed);
        let g = generators::gnp_connected(16, 0.2, CostRange::new(1.0, 5.0), &mut rng);
        let mut net = Network::all_switches(g);
        let picks = rng.sample_indices(16, 10);
        for &v in &picks[..5] {
            net.make_vm(NodeId::new(v), Cost::new(rng.range_f64(0.5, 3.0)));
        }
        SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(picks[5]), NodeId::new(picks[6])],
                picks[7..10].iter().map(|&i| NodeId::new(i)).collect(),
                ServiceChain::with_len(2),
            ),
        )
        .unwrap()
    }

    #[test]
    fn size_formulas() {
        let inst = instance(1);
        let ip = IpFormulation::build(&inst);
        let size = ip.size();
        // γ: 3·4·16, π: 3·3·(2m), τ: 3·(2m), σ: 2·16 with m edges.
        let m2 = inst.network.graph().edge_count() * 2;
        assert_eq!(size.variables, 3 * 4 * 16 + 3 * 3 * m2 + 3 * m2 + 2 * 16);
        assert!(size.constraints > 0);
    }

    #[test]
    fn sofda_output_satisfies_the_ip() {
        for seed in 0..8 {
            let inst = instance(seed);
            let ip = IpFormulation::build(&inst);
            let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
            let obj = ip
                .check_forest(&out.forest)
                .expect("forest must satisfy IP");
            assert!(
                obj.approx_eq(out.cost.total()),
                "objective {obj} != forest cost {}",
                out.cost.total()
            );
        }
    }

    #[test]
    fn exact_output_satisfies_the_ip() {
        for seed in 0..5 {
            let inst = instance(seed + 50);
            let ip = IpFormulation::build(&inst);
            let out = crate::solve_exact(&inst, 300).unwrap();
            let obj = ip
                .check_forest(&out.forest)
                .expect("exact forest satisfies IP");
            assert!(obj.approx_eq(out.cost));
        }
    }

    #[test]
    fn lp_text_has_objective_and_sections() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
        let mut net = Network::all_switches(g);
        net.make_vm(NodeId::new(1), Cost::new(2.0));
        let inst = SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(0)],
                vec![NodeId::new(2)],
                ServiceChain::with_len(1),
            ),
        )
        .unwrap();
        let ip = IpFormulation::build(&inst);
        let lp = ip.to_lp_string();
        assert!(lp.contains("Minimize"));
        assert!(lp.contains("Subject To"));
        assert!(lp.contains("c1_0:"));
        assert!(lp.contains("Binary"));
        assert!(lp.ends_with("End\n"));
    }

    #[test]
    fn checker_rejects_conflicts() {
        let inst = instance(9);
        let ip = IpFormulation::build(&inst);
        let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
        let mut broken = out.forest.clone();
        // Swap the first walk's two placements to manufacture a conflict /
        // order violation.
        broken.walks[0].vnf_positions.reverse();
        assert!(ip.check_forest(&broken).is_err() || broken.walks[0].vnf_positions.len() < 2);
    }
}

//! Maps `(method, path)` onto [`Registry`] operations.
//!
//! Routing never panics the connection thread: handler panics are caught
//! and answered as 500s, and every malformed request gets a 4xx naming
//! what was wrong with it.

use crate::http::Request;
use crate::registry::Registry;
use crate::wire::{ApiError, Body};
use sof_spec::value::{write_json, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Takes the registry's shared lock, recovering from poisoning — a
/// panicking handler must not brick the whole daemon. Read-only routes
/// (and the per-route request counting) go through here so they never
/// queue behind an embed.
pub fn read(registry: &RwLock<Registry>) -> RwLockReadGuard<'_, Registry> {
    registry.read().unwrap_or_else(|e| e.into_inner())
}

/// Takes the registry's exclusive lock, recovering from poisoning.
pub fn write(registry: &RwLock<Registry>) -> RwLockWriteGuard<'_, Registry> {
    registry.write().unwrap_or_else(|e| e.into_inner())
}

fn method_not_allowed(req: &Request, allowed: &str) -> ApiError {
    ApiError {
        status: 405,
        message: format!(
            "{} is not allowed on {} (use {allowed})",
            req.method, req.path
        ),
    }
}

fn session_id(seg: &str) -> Result<u64, ApiError> {
    seg.parse()
        .map_err(|_| ApiError::bad_request(format!("session id must be an integer, got '{seg}'")))
}

fn dispatch(
    registry: &RwLock<Registry>,
    stop: &AtomicBool,
    req: &Request,
) -> Result<Value, ApiError> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let method = req.method.as_str();
    match segments.as_slice() {
        ["healthz"] => match method {
            "GET" => Ok(read(registry).healthz()),
            _ => Err(method_not_allowed(req, "GET")),
        },
        ["v1", "stats"] => match method {
            "GET" => Ok(read(registry).stats_value()),
            _ => Err(method_not_allowed(req, "GET")),
        },
        ["v1", "topologies"] => match method {
            "POST" => write(registry).create_topology(Body::parse(&req.body)?),
            _ => Err(method_not_allowed(req, "POST")),
        },
        ["v1", "sessions"] => match method {
            "POST" => write(registry).create_session(Body::parse(&req.body)?),
            _ => Err(method_not_allowed(req, "POST")),
        },
        ["v1", "sessions", id] => {
            let id = session_id(id)?;
            match method {
                "GET" => read(registry).session_get(id),
                "DELETE" => write(registry).session_delete(id),
                _ => Err(method_not_allowed(req, "GET or DELETE")),
            }
        }
        ["v1", "sessions", id, op @ ("join" | "leave" | "fail" | "repair")] => {
            let id = session_id(id)?;
            if method != "POST" {
                return Err(method_not_allowed(req, "POST"));
            }
            let body = Body::parse(&req.body)?;
            match *op {
                "join" => write(registry).session_join(id, body),
                "leave" => write(registry).session_leave(id, body),
                "fail" => write(registry).session_fail(id, body),
                _ => write(registry).session_repair(id, body),
            }
        }
        ["v1", "shutdown"] => match method {
            "POST" => {
                stop.store(true, Ordering::Release);
                let mut v = Value::table();
                v.set("stopping", Value::Bool(true));
                Ok(v)
            }
            _ => Err(method_not_allowed(req, "POST")),
        },
        _ => Err(ApiError::not_found(format!(
            "no route for {} {} (endpoints: /healthz, /v1/stats, /v1/topologies, \
             /v1/sessions[/{{id}}[/join|leave|fail|repair]], /v1/shutdown)",
            req.method, req.path
        ))),
    }
}

/// Routes one request and returns `(status, JSON body)`. Handler panics
/// become 500s; every response is counted in the registry's totals.
pub fn route(registry: &RwLock<Registry>, stop: &AtomicBool, req: &Request) -> (u16, String) {
    let outcome = catch_unwind(AssertUnwindSafe(|| dispatch(registry, stop, req)));
    let (status, body) = match outcome {
        Ok(Ok(value)) => (200, write_json(&value)),
        Ok(Err(e)) => (e.status, e.to_json()),
        Err(_) => {
            let e = ApiError {
                status: 500,
                message: format!("internal error handling {} {}", req.method, req.path),
            };
            (e.status, e.to_json())
        }
    };
    read(registry).count(status >= 400);
    (status, body)
}

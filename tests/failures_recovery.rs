//! Acceptance tests for the `sof_survive` survivability subsystem wired
//! through the streaming runner: the protected preset's JSONL is
//! byte-identical across worker-thread counts and reruns and stays in
//! lockstep with its committed golden; the standby-forest policy strictly
//! beats reactive on mean recovery cost over the shared failure trace; and
//! protector switchover never routes through a failed element while
//! repaired elements go straight back into service.

use sof::core::{EmbedMode, OnlineConfig, OnlineSession, Request, SofdaConfig};
use sof::spec::{presets, run_churn_stream, RunOptions};
use sof::survive::{forest_avoids, ProtectionPolicy, Protector};
use sof::topo::{build_instance, softlayer, ScenarioParams};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` that can be handed to [`run_churn_stream`] (which takes the
/// writer by value) while the test keeps a handle to the bytes.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn into_string(self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Streams the bundled protected preset (all three policy legs plus the
/// closing policy-comparison line) with the given worker-thread count.
fn protected_stream(threads: usize) -> String {
    let spec = presets::preset("churn-failures-protected")
        .expect("bundled preset")
        .expect("preset parses");
    let buf = SharedBuf::default();
    let opts = RunOptions {
        threads,
        ..RunOptions::default()
    };
    run_churn_stream(&spec, &opts, buf.clone()).unwrap();
    buf.into_string()
}

/// Failure application and recovery run serially between rounds, so the
/// full three-leg stream — failure trace, recovery records, and the
/// comparison line — is byte-identical for 1 and 4 worker threads, across
/// reruns, and against the committed golden CI diffs.
#[test]
fn protected_preset_is_thread_count_independent_and_matches_golden() {
    let one = protected_stream(1);
    assert!(one.contains("\"type\":\"failure\""), "trace emitted");
    assert!(one.contains("\"type\":\"recovery\""), "recoveries emitted");
    assert_eq!(one, protected_stream(4), "thread count changed the bytes");
    assert_eq!(one, protected_stream(1), "rerun changed the bytes");
    let golden = std::fs::read_to_string("crates/spec/specs/golden/churn-failures-protected.jsonl")
        .expect("committed golden file");
    assert_eq!(one, golden, "stream drifted from the committed golden");
}

/// Pulls one leg's `mean_recovery_cost` out of the policy-comparison line.
fn mean_recovery_cost(line: &str, policy: &str) -> f64 {
    let leg = format!("{{\"policy\":\"{policy}\",");
    let rest = &line[line.find(&leg).expect("leg present")..];
    let key = "\"mean_recovery_cost\":";
    let tail = &rest[rest.find(key).expect("cost present") + key.len()..];
    let end = tail
        .find(|c: char| !c.is_ascii_digit() && !"+-.eE".contains(c))
        .unwrap_or(tail.len());
    tail[..end].parse().expect("numeric cost")
}

/// The acceptance criterion of the survivability PR: on the identical
/// failure trace, the pre-solved standby forest recovers strictly cheaper
/// on average than reactive full rebuilds.
#[test]
fn standby_forest_strictly_beats_reactive_on_the_shared_trace() {
    let out = protected_stream(1);
    let line = out
        .lines()
        .rev()
        .find(|l| l.contains("\"type\":\"policy-comparison\""))
        .expect("comparison line closes the stream");
    let reactive = mean_recovery_cost(line, "reactive");
    let standby = mean_recovery_cost(line, "standby-forest");
    assert!(
        standby < reactive,
        "standby ({standby}) must beat reactive ({reactive})"
    );
}

/// A seeded SoftLayer session with a standing forest, the same instance
/// recipe as the online-session acceptance tests.
fn embedded_session(seed: u64) -> OnlineSession {
    let topo = softlayer();
    let mut p = ScenarioParams::paper_defaults().with_seed(seed);
    p.vm_count = topo.dc_nodes.len() * 5;
    p.chain_len = 3;
    let mut s = OnlineSession::new(
        build_instance(&topo, &p),
        sof::solvers::by_name("SOFDA").expect("registered"),
        SofdaConfig::default().with_seed(seed),
        OnlineConfig::default().with_mode(EmbedMode::Incremental),
    );
    let first = Request::new(
        s.instance().request.sources.clone(),
        s.instance().request.destinations.clone(),
        s.instance().request.chain.clone(),
    );
    s.arrive(first).unwrap();
    s
}

/// The last hop of the first standing walk: failing it always disrupts
/// that walk's destination.
fn last_hop(s: &OnlineSession) -> (sof::graph::NodeId, sof::graph::NodeId, sof::graph::NodeId) {
    let w = &s.forest().unwrap().walks[0];
    let n = w.nodes.len();
    (w.destination, w.nodes[n - 2], w.nodes[n - 1])
}

/// BackupPaths switchover never leaves a walk traversing a failed
/// element: after recovery the standing forest validates and avoids every
/// failed edge and switch (or the cascade dropped it for a deferred
/// rebuild — never a silently broken forest).
#[test]
fn backup_switchover_never_traverses_a_failed_element() {
    let mut s = embedded_session(7);
    let mut protector = Protector::new(ProtectionPolicy::BackupPaths, None);
    protector.prewarm(&mut s);
    let (d, u, v) = last_hop(&s);
    let affected = s.fail_link(u, v).unwrap();
    assert!(affected.contains(&d), "last hop disrupts its destination");
    let outcome = protector.recover(&mut s, &affected);
    assert_eq!(outcome.affected, affected.len());
    if outcome.pending {
        assert!(s.forest().is_none(), "deferred recovery clears the forest");
    } else {
        assert_eq!(outcome.recovered, affected.len());
        let forest = s.forest().expect("recovered forest stands");
        forest.validate(s.instance()).unwrap();
        assert!(
            forest_avoids(forest, &s.failed_edges(), &s.failed_switches()),
            "recovered forest still traverses a failed element"
        );
    }
}

/// A standby swap is free: when the pre-solved disjoint forest survives
/// the failure, recovery costs exactly zero and the installed forest
/// avoids the failed elements.
#[test]
fn standby_swap_is_zero_cost_and_avoids_failures() {
    let mut s = embedded_session(11);
    let solver = sof::solvers::by_name("SOFDA").expect("registered");
    let mut protector = Protector::new(ProtectionPolicy::StandbyForest, Some(solver));
    protector.prewarm(&mut s);
    assert!(protector.standby_ready(), "standby solve must succeed here");
    let (_, u, v) = last_hop(&s);
    let affected = s.fail_link(u, v).unwrap();
    let outcome = protector.recover(&mut s, &affected);
    if let Some(forest) = s.forest() {
        forest.validate(s.instance()).unwrap();
        assert!(
            forest_avoids(forest, &s.failed_edges(), &s.failed_switches()),
            "post-recovery forest traverses a failed element"
        );
        // The disjointness-priced standby avoided the primary's links, so
        // the swap path fired and was free.
        if outcome.recovered == outcome.affected && outcome.cost == 0.0 {
            return;
        }
        // Otherwise the cascade spliced backup walks in; still recovered.
        assert!(outcome.recovered > 0 || outcome.affected == 0);
    } else {
        assert!(outcome.pending, "no forest means a deferred rebuild");
    }
}

/// Repaired elements return to service: after `repair_link` the edge is
/// priced at its pristine cost again and a fresh embedding of the same
/// group is free to route through it.
#[test]
fn repaired_links_are_reused_by_later_embeddings() {
    let mut s = embedded_session(13);
    let (_, u, v) = last_hop(&s);
    let e = s.instance().network.graph().edge_between(u, v).unwrap();
    let pristine = s.instance().network.graph().edge_cost(e);
    let _ = s.fail_link(u, v).unwrap();
    assert!(
        s.instance().network.graph().edge_cost(e) > pristine,
        "failure must surcharge the link"
    );
    s.repair_link(u, v).unwrap();
    assert!(s.failed_edges().is_empty());
    assert_eq!(
        s.instance().network.graph().edge_cost(e),
        pristine,
        "repair must restore the pristine price"
    );
    // A from-scratch re-embedding of the same group may route through the
    // repaired link again — and with the original seed it does, because
    // the pre-failure optimum used it.
    let again = Request::new(
        s.instance().request.sources.clone(),
        s.instance().request.destinations.clone(),
        s.instance().request.chain.clone(),
    );
    let mut fresh = embedded_session(13);
    fresh.arrive(again).unwrap();
    let key = (u.min(v), u.max(v));
    let uses_repaired = fresh.forest().unwrap().walks.iter().any(|w| {
        w.nodes
            .windows(2)
            .any(|p| (p[0].min(p[1]), p[0].max(p[1])) == key)
    });
    assert!(uses_repaired, "optimal embedding reuses the repaired link");
}

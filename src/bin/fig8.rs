//! Legacy shim: `fig8` now delegates to the bundled `fig8` preset spec
//! (see `crates/spec/specs/fig8.toml`); same flags, same output.
fn main() {
    sof_spec::shim::legacy_main("fig8");
}

//! No-op derive macros backing the vendored `serde` stand-in.
//!
//! The traits in `vendor/serde` are blanket-implemented, so the derives
//! only need to exist (and accept `#[serde(...)]` helper attributes);
//! they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Dense metric instances for the k-stroll solvers.

use sof_graph::Cost;

/// A complete weighted graph stored as a dense symmetric matrix.
///
/// Procedure 1 of the SOF paper builds exactly such an instance: nodes are
/// the source plus all VMs, and edge costs blend shortest-path distances
/// with shared VM setup costs. The k-stroll solvers operate on this type.
///
/// # Examples
///
/// ```
/// use sof_kstroll::DenseMetric;
/// use sof_graph::Cost;
///
/// let m = DenseMetric::from_fn(3, |i, j| Cost::new((i as f64 - j as f64).abs()));
/// assert_eq!(m.cost(0, 2), Cost::new(2.0));
/// assert!(m.respects_triangle_inequality(1e-9));
/// ```
#[derive(Clone, Debug)]
pub struct DenseMetric {
    n: usize,
    d: Vec<Cost>,
    /// Cheapest off-diagonal hop, computed once at construction. The exact
    /// k-stroll search uses it as an admissible lower bound on every
    /// remaining hop; memoizing it here saves an O(n²) rescan per call.
    min_hop: Cost,
}

impl DenseMetric {
    /// Builds an `n × n` metric from a cost function (diagonal forced to 0).
    pub fn from_fn<F>(n: usize, mut f: F) -> DenseMetric
    where
        F: FnMut(usize, usize) -> Cost,
    {
        let mut d = vec![Cost::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    d[i * n + j] = f(i, j);
                }
            }
        }
        DenseMetric::assemble(n, d)
    }

    /// Builds a symmetric metric from an upper-triangle function.
    pub fn symmetric_from_fn<F>(n: usize, mut f: F) -> DenseMetric
    where
        F: FnMut(usize, usize) -> Cost,
    {
        let mut d = vec![Cost::ZERO; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let c = f(i, j);
                d[i * n + j] = c;
                d[j * n + i] = c;
            }
        }
        DenseMetric::assemble(n, d)
    }

    fn assemble(n: usize, d: Vec<Cost>) -> DenseMetric {
        let mut min_hop = Cost::INFINITY;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    min_hop = min_hop.min(d[i * n + j]);
                }
            }
        }
        DenseMetric { n, d, min_hop }
    }

    /// The cheapest hop between two distinct nodes
    /// ([`Cost::INFINITY`] for `n < 2`).
    #[inline]
    pub fn min_hop(&self) -> Cost {
        self.min_hop
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the empty instance.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Cost between nodes `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn cost(&self, i: usize, j: usize) -> Cost {
        assert!(i < self.n && j < self.n, "index out of range");
        self.d[i * self.n + j]
    }

    /// Total cost of a node sequence.
    pub fn path_cost(&self, path: &[usize]) -> Cost {
        path.windows(2).map(|w| self.cost(w[0], w[1])).sum()
    }

    /// Checks the triangle inequality up to an additive tolerance.
    ///
    /// Lemma 1 of the paper proves the Procedure 1 instance satisfies it;
    /// property tests call this on every constructed instance.
    pub fn respects_triangle_inequality(&self, tol: f64) -> bool {
        for a in 0..self.n {
            for b in 0..self.n {
                for c in 0..self.n {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    let direct = self.cost(a, c).value();
                    let via = self.cost(a, b).value() + self.cost(b, c).value();
                    if direct > via + tol {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_zero_diagonal() {
        let m = DenseMetric::from_fn(4, |_, _| Cost::new(5.0));
        for i in 0..4 {
            assert_eq!(m.cost(i, i), Cost::ZERO);
        }
        assert_eq!(m.cost(1, 2), Cost::new(5.0));
    }

    #[test]
    fn symmetric_builder() {
        let m = DenseMetric::symmetric_from_fn(3, |i, j| Cost::new((i + j) as f64));
        assert_eq!(m.cost(0, 2), m.cost(2, 0));
        assert_eq!(m.cost(1, 2), Cost::new(3.0));
    }

    #[test]
    fn path_cost_sums_hops() {
        let m = DenseMetric::from_fn(4, |i, j| Cost::new((i as f64 - j as f64).abs()));
        assert_eq!(m.path_cost(&[0, 2, 1, 3]), Cost::new(5.0));
        assert_eq!(m.path_cost(&[2]), Cost::ZERO);
    }

    #[test]
    fn triangle_violation_detected() {
        let mut d = DenseMetric::from_fn(3, |_, _| Cost::new(1.0));
        // Force a violation: 0-2 much longer than 0-1-2 (entries (0,2), (2,0)).
        d.d[2] = Cost::new(10.0);
        d.d[6] = Cost::new(10.0);
        assert!(!d.respects_triangle_inequality(1e-9));
    }
}

//! Metric instances for the k-stroll solvers: the [`Metric`] trait, the
//! eager [`DenseMetric`] matrix and the on-demand [`LazyMetric`].

use sof_graph::Cost;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A finite metric space over points `0..len()`, as consumed by every
/// k-stroll solver.
///
/// Implementations must be deterministic: `cost(i, j)` always returns the
/// same value for the same instance, so lazily materialized metrics answer
/// bit-identically to eager ones. The diagonal is zero.
pub trait Metric {
    /// Number of points.
    fn len(&self) -> usize;

    /// Cost between points `i` and `j` (`ZERO` on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    fn cost(&self, i: usize, j: usize) -> Cost;

    /// Borrowed view of row `i` (`row(i)[j] == cost(i, j)`), when the
    /// implementation can expose one without copying: dense storage and
    /// pinned lazy rows can; a capped lazy cache cannot (the row may be
    /// evicted under the caller). Hot search loops read the slice directly
    /// — a plain indexed load — and fall back to [`Metric::cost`] on
    /// `None`.
    fn row(&self, i: usize) -> Option<&[Cost]> {
        let _ = i;
        None
    }

    /// An admissible lower bound on the cost of any hop between two
    /// distinct points. The exact search uses it for pruning; `ZERO` (the
    /// default) is always sound and never changes which stroll is returned,
    /// only how many branches are explored.
    fn hop_lower_bound(&self) -> Cost {
        Cost::ZERO
    }

    /// Returns `true` for the empty instance.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cost of a node sequence.
    fn path_cost(&self, path: &[usize]) -> Cost {
        path.windows(2).map(|w| self.cost(w[0], w[1])).sum()
    }
}

/// A complete weighted graph stored as a dense symmetric matrix.
///
/// Procedure 1 of the SOF paper builds exactly such an instance: nodes are
/// the source plus all VMs, and edge costs blend shortest-path distances
/// with shared VM setup costs. The k-stroll solvers operate on this type.
///
/// # Examples
///
/// ```
/// use sof_kstroll::DenseMetric;
/// use sof_graph::Cost;
///
/// let m = DenseMetric::from_fn(3, |i, j| Cost::new((i as f64 - j as f64).abs()));
/// assert_eq!(m.cost(0, 2), Cost::new(2.0));
/// assert!(m.respects_triangle_inequality(1e-9));
/// ```
#[derive(Clone, Debug)]
pub struct DenseMetric {
    n: usize,
    d: Vec<Cost>,
    /// Cheapest off-diagonal hop, computed once at construction. The exact
    /// k-stroll search uses it as an admissible lower bound on every
    /// remaining hop; memoizing it here saves an O(n²) rescan per call.
    min_hop: Cost,
}

impl DenseMetric {
    /// Builds an `n × n` metric from a cost function (diagonal forced to 0).
    pub fn from_fn<F>(n: usize, mut f: F) -> DenseMetric
    where
        F: FnMut(usize, usize) -> Cost,
    {
        let mut d = vec![Cost::ZERO; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    d[i * n + j] = f(i, j);
                }
            }
        }
        DenseMetric::assemble(n, d)
    }

    /// Builds a symmetric metric from an upper-triangle function.
    pub fn symmetric_from_fn<F>(n: usize, mut f: F) -> DenseMetric
    where
        F: FnMut(usize, usize) -> Cost,
    {
        let mut d = vec![Cost::ZERO; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let c = f(i, j);
                d[i * n + j] = c;
                d[j * n + i] = c;
            }
        }
        DenseMetric::assemble(n, d)
    }

    fn assemble(n: usize, d: Vec<Cost>) -> DenseMetric {
        let mut min_hop = Cost::INFINITY;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    min_hop = min_hop.min(d[i * n + j]);
                }
            }
        }
        DenseMetric { n, d, min_hop }
    }

    /// The cheapest hop between two distinct nodes
    /// ([`Cost::INFINITY`] for `n < 2`).
    #[inline]
    pub fn min_hop(&self) -> Cost {
        self.min_hop
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the empty instance.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Cost between nodes `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn cost(&self, i: usize, j: usize) -> Cost {
        assert!(i < self.n && j < self.n, "index out of range");
        self.d[i * self.n + j]
    }

    /// Total cost of a node sequence.
    pub fn path_cost(&self, path: &[usize]) -> Cost {
        path.windows(2).map(|w| self.cost(w[0], w[1])).sum()
    }

    /// Checks the triangle inequality up to an additive tolerance.
    ///
    /// Lemma 1 of the paper proves the Procedure 1 instance satisfies it;
    /// property tests call this on every constructed instance.
    pub fn respects_triangle_inequality(&self, tol: f64) -> bool {
        for a in 0..self.n {
            for b in 0..self.n {
                for c in 0..self.n {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    let direct = self.cost(a, c).value();
                    let via = self.cost(a, b).value() + self.cost(b, c).value();
                    if direct > via + tol {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl Metric for DenseMetric {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn cost(&self, i: usize, j: usize) -> Cost {
        DenseMetric::cost(self, i, j)
    }

    #[inline]
    fn row(&self, i: usize) -> Option<&[Cost]> {
        Some(&self.d[i * self.n..(i + 1) * self.n])
    }

    /// The precomputed cheapest off-diagonal hop — the strongest admissible
    /// bound a dense instance can offer.
    #[inline]
    fn hop_lower_bound(&self) -> Cost {
        self.min_hop
    }
}

/// Default number of rows a [`LazyMetric`] keeps materialized at once.
const DEFAULT_ROW_CAP: usize = 256;

/// A metric whose rows are materialized on demand from a cost oracle.
///
/// Procedure 1 instances are only ever probed along the rows the solvers
/// actually visit (the source row, rows of VMs entering a partial stroll),
/// so building the full `n × n` matrix up front wastes `O(n)` shortest-path
/// trees per solve on large networks. `LazyMetric` instead materializes one
/// row per first touch and caches the hottest rows, evicting stale rows
/// first (least-recently-used, ties broken toward the smallest index) once
/// the cap is reached. When the cap covers every row — the common case for
/// Procedure 1's small instances — eviction can never trigger, rows are
/// write-once, and the solver-facing read path is a single atomic load
/// instead of a lock.
///
/// The oracle is consulted with exactly the same `(i, j)` pairs and in the
/// same per-row order as [`DenseMetric::from_fn`] fills its matrix, and the
/// diagonal is forced to zero the same way, so a `LazyMetric` answers
/// bit-identically to the `DenseMetric` built from the same oracle.
/// [`Metric::hop_lower_bound`] defaults to the always-admissible zero
/// (scanning all `n²` entries would defeat laziness); exact search then
/// prunes less aggressively but returns the same stroll. Callers that know
/// a cheap sound bound can install it with
/// [`LazyMetric::with_hop_lower_bound`].
///
/// # Examples
///
/// ```
/// use sof_kstroll::{DenseMetric, LazyMetric, Metric};
/// use sof_graph::Cost;
///
/// let f = |i: usize, j: usize| Cost::new((i as f64 - j as f64).abs());
/// let dense = DenseMetric::from_fn(4, f);
/// let lazy = LazyMetric::from_fn(4, f);
/// assert_eq!(Metric::cost(&dense, 1, 3), lazy.cost(1, 3));
/// assert_eq!(lazy.rows_built(), 1);
/// ```
pub struct LazyMetric {
    n: usize,
    cost_of: Box<dyn Fn(usize, usize) -> Cost + Send + Sync>,
    hop_bound: Cost,
    cap: usize,
    store: RowStore,
}

/// Row storage, picked once at construction.
enum RowStore {
    /// `cap >= n`: eviction can never trigger, so every row is write-once
    /// and the solver-facing read path is a single atomic load — no lock
    /// on the DFS hot path.
    Pinned {
        rows: Vec<OnceLock<Box<[Cost]>>>,
        rows_built: AtomicU64,
    },
    /// `cap < n`: bounded LRU with stale-first eviction behind a mutex.
    Capped(Mutex<RowCache>),
}

struct RowCache {
    rows: Vec<Option<Row>>,
    /// Number of `Some` rows, tracked so eviction avoids an O(n) scan.
    live: usize,
    /// Monotone access clock backing the LRU policy.
    clock: u64,
    cap: usize,
    rows_built: u64,
    evictions: u64,
}

struct Row {
    d: Box<[Cost]>,
    last_used: u64,
}

impl LazyMetric {
    /// Builds an `n`-point lazy metric from a cost oracle (diagonal forced
    /// to 0), keeping a default of 256 rows hot (see [`Self::row_cap`]).
    pub fn from_fn<F>(n: usize, f: F) -> LazyMetric
    where
        F: Fn(usize, usize) -> Cost + Send + Sync + 'static,
    {
        LazyMetric::with_row_cap(n, DEFAULT_ROW_CAP, f)
    }

    /// Like [`LazyMetric::from_fn`] with an explicit row-cache capacity
    /// (clamped to at least one row).
    pub fn with_row_cap<F>(n: usize, cap: usize, f: F) -> LazyMetric
    where
        F: Fn(usize, usize) -> Cost + Send + Sync + 'static,
    {
        let cap = cap.max(1);
        let store = if cap >= n {
            RowStore::Pinned {
                rows: (0..n).map(|_| OnceLock::new()).collect(),
                rows_built: AtomicU64::new(0),
            }
        } else {
            RowStore::Capped(Mutex::new(RowCache {
                rows: (0..n).map(|_| None).collect(),
                live: 0,
                clock: 0,
                cap,
                rows_built: 0,
                evictions: 0,
            }))
        };
        LazyMetric {
            n,
            cost_of: Box::new(f),
            hop_bound: Cost::ZERO,
            cap,
            store,
        }
    }

    /// Maximum number of rows kept materialized at once.
    pub fn row_cap(&self) -> usize {
        self.cap
    }

    /// Installs an explicit admissible hop lower bound.
    ///
    /// The caller promises `bound <= cost(i, j)` for all `i != j`; a sound
    /// bound only changes how aggressively the exact search prunes, never
    /// which stroll it returns. Useful when the oracle's structure yields a
    /// cheap bound (e.g. node-potential terms) without the O(n²) scan that
    /// [`DenseMetric`] performs eagerly.
    #[must_use]
    pub fn with_hop_lower_bound(mut self, bound: Cost) -> LazyMetric {
        self.hop_bound = bound;
        self
    }

    /// Number of rows materialized so far (rebuilds after eviction count
    /// again).
    pub fn rows_built(&self) -> u64 {
        match &self.store {
            RowStore::Pinned { rows_built, .. } => rows_built.load(Ordering::Relaxed),
            RowStore::Capped(cache) => lock(cache).rows_built,
        }
    }

    /// Number of rows evicted to stay under the cap.
    pub fn evictions(&self) -> u64 {
        match &self.store {
            RowStore::Pinned { .. } => 0,
            RowStore::Capped(cache) => lock(cache).evictions,
        }
    }

    /// Materializes row `i` with the same oracle calls, in the same order,
    /// as one row of [`DenseMetric::from_fn`].
    fn build_row(&self, i: usize) -> Box<[Cost]> {
        (0..self.n)
            .map(|k| {
                if k == i {
                    Cost::ZERO
                } else {
                    (self.cost_of)(i, k)
                }
            })
            .collect()
    }
}

fn lock(cache: &Mutex<RowCache>) -> std::sync::MutexGuard<'_, RowCache> {
    cache.lock().unwrap_or_else(|e| e.into_inner())
}

impl std::fmt::Debug for LazyMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (live, built, evicted) = match &self.store {
            RowStore::Pinned { rows, rows_built } => {
                let live = rows.iter().filter(|r| r.get().is_some()).count();
                (live, rows_built.load(Ordering::Relaxed), 0)
            }
            RowStore::Capped(cache) => {
                let c = lock(cache);
                (c.live, c.rows_built, c.evictions)
            }
        };
        f.debug_struct("LazyMetric")
            .field("n", &self.n)
            .field("cap", &self.cap)
            .field("live_rows", &live)
            .field("rows_built", &built)
            .field("evictions", &evicted)
            .finish()
    }
}

impl Metric for LazyMetric {
    #[inline]
    fn len(&self) -> usize {
        self.n
    }

    #[inline]
    fn hop_lower_bound(&self) -> Cost {
        self.hop_bound
    }

    /// Pinned rows are write-once, so handing out a borrow is safe; capped
    /// rows can be evicted and stay behind [`Metric::cost`].
    #[inline]
    fn row(&self, i: usize) -> Option<&[Cost]> {
        assert!(i < self.n, "index out of range");
        match &self.store {
            RowStore::Pinned { rows, rows_built } => Some(rows[i].get_or_init(|| {
                rows_built.fetch_add(1, Ordering::Relaxed);
                self.build_row(i)
            })),
            RowStore::Capped(_) => None,
        }
    }

    #[inline]
    fn cost(&self, i: usize, j: usize) -> Cost {
        assert!(i < self.n && j < self.n, "index out of range");
        match &self.store {
            RowStore::Pinned { rows, rows_built } => {
                let row = rows[i].get_or_init(|| {
                    rows_built.fetch_add(1, Ordering::Relaxed);
                    self.build_row(i)
                });
                row[j]
            }
            RowStore::Capped(cache) => {
                let mut cache = lock(cache);
                cache.clock += 1;
                let now = cache.clock;
                if cache.rows[i].is_none() {
                    if cache.live >= cache.cap {
                        // Stale-first eviction: drop the least-recently-used
                        // row, ties broken toward the smallest index so the
                        // policy is deterministic.
                        let victim = cache
                            .rows
                            .iter()
                            .enumerate()
                            .filter_map(|(v, row)| row.as_ref().map(|r| (r.last_used, v)))
                            .min()
                            .map(|(_, v)| v)
                            .expect("cap >= 1 and cache is full");
                        cache.rows[victim] = None;
                        cache.live -= 1;
                        cache.evictions += 1;
                    }
                    let d = self.build_row(i);
                    cache.rows[i] = Some(Row { d, last_used: now });
                    cache.live += 1;
                    cache.rows_built += 1;
                }
                let row = cache.rows[i].as_mut().expect("row materialized above");
                row.last_used = now;
                row.d[j]
            }
        }
    }
}

/// Instances at or below this size are materialized eagerly by
/// [`AutoMetric::from_fn`]: the `n²` build is a handful of kilobytes and a
/// few thousand O(1) oracle calls, while the lazy bookkeeping (boxed oracle,
/// per-row cells) costs more than it saves. Above it, rows stay on demand.
pub const AUTO_DENSE_CUTOVER: usize = 96;

/// A [`Metric`] that picks its storage by instance size: dense at or below
/// [`AUTO_DENSE_CUTOVER`] points, lazy above.
///
/// The SOF pipeline builds one metric per (source, VM-set) pair, thousands
/// of times per run, and those instances are usually tiny — for them an
/// eager matrix is both smaller and faster than lazy row cells. The same
/// constructor keeps arbitrarily large instances (exact-search relaxations,
/// whole-topology sweeps) from ever paying the O(n²) wall, by switching to
/// [`LazyMetric`] row-on-demand storage. Both representations consult the
/// oracle in the same per-row order, so which one is picked never changes a
/// solver's answer.
#[derive(Debug)]
pub enum AutoMetric {
    /// Eagerly materialized (small instance).
    Dense(DenseMetric),
    /// Rows on demand (large instance).
    Lazy(LazyMetric),
}

impl AutoMetric {
    /// Builds an `n`-point metric from a cost oracle (diagonal forced to
    /// 0), choosing the storage by `n`.
    pub fn from_fn<F>(n: usize, f: F) -> AutoMetric
    where
        F: Fn(usize, usize) -> Cost + Send + Sync + 'static,
    {
        if n <= AUTO_DENSE_CUTOVER {
            AutoMetric::Dense(DenseMetric::from_fn(n, f))
        } else {
            AutoMetric::Lazy(LazyMetric::from_fn(n, f))
        }
    }

    /// Installs an admissible hop lower bound on the lazy representation.
    ///
    /// The dense representation already memoizes the exact cheapest
    /// off-diagonal hop — the strongest admissible bound — at construction,
    /// so the caller's bound (necessarily no stronger) is dropped there.
    #[must_use]
    pub fn with_hop_lower_bound(self, bound: Cost) -> AutoMetric {
        match self {
            AutoMetric::Dense(m) => AutoMetric::Dense(m),
            AutoMetric::Lazy(m) => AutoMetric::Lazy(m.with_hop_lower_bound(bound)),
        }
    }

    /// `true` when the eager representation was picked.
    pub fn is_dense(&self) -> bool {
        matches!(self, AutoMetric::Dense(_))
    }

    /// Rows materialized so far (`n` immediately for the dense side).
    pub fn rows_built(&self) -> u64 {
        match self {
            AutoMetric::Dense(m) => m.len() as u64,
            AutoMetric::Lazy(m) => m.rows_built(),
        }
    }
}

impl Metric for AutoMetric {
    #[inline]
    fn len(&self) -> usize {
        match self {
            AutoMetric::Dense(m) => Metric::len(m),
            AutoMetric::Lazy(m) => Metric::len(m),
        }
    }

    #[inline]
    fn cost(&self, i: usize, j: usize) -> Cost {
        match self {
            AutoMetric::Dense(m) => Metric::cost(m, i, j),
            AutoMetric::Lazy(m) => Metric::cost(m, i, j),
        }
    }

    #[inline]
    fn row(&self, i: usize) -> Option<&[Cost]> {
        match self {
            AutoMetric::Dense(m) => Metric::row(m, i),
            AutoMetric::Lazy(m) => Metric::row(m, i),
        }
    }

    #[inline]
    fn hop_lower_bound(&self) -> Cost {
        match self {
            AutoMetric::Dense(m) => Metric::hop_lower_bound(m),
            AutoMetric::Lazy(m) => Metric::hop_lower_bound(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_metric_picks_storage_by_size() {
        let f = |i: usize, j: usize| Cost::new((i * 3 + j) as f64 + 0.5);
        let small = AutoMetric::from_fn(AUTO_DENSE_CUTOVER, f);
        assert!(small.is_dense());
        assert_eq!(small.rows_built(), AUTO_DENSE_CUTOVER as u64);
        let large = AutoMetric::from_fn(AUTO_DENSE_CUTOVER + 1, f);
        assert!(!large.is_dense());
        assert_eq!(large.rows_built(), 0);
    }

    #[test]
    fn auto_metric_answers_identically_on_both_sides() {
        let f = |i: usize, j: usize| Cost::new(((i * 7 + j * 3) % 11) as f64 + 0.25);
        // Same oracle through all three types: AutoMetric must agree with
        // both representations bit-for-bit regardless of which it picked.
        let auto_small = AutoMetric::from_fn(6, f);
        let auto_large = AutoMetric::from_fn(AUTO_DENSE_CUTOVER + 4, f);
        let dense_small = DenseMetric::from_fn(6, f);
        let lazy_large = LazyMetric::from_fn(AUTO_DENSE_CUTOVER + 4, f);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(auto_small.cost(i, j), Metric::cost(&dense_small, i, j));
            }
        }
        for i in 0..AUTO_DENSE_CUTOVER + 4 {
            for j in 0..AUTO_DENSE_CUTOVER + 4 {
                assert_eq!(auto_large.cost(i, j), lazy_large.cost(i, j));
            }
        }
        // Dense side keeps its own exact min-hop; lazy side takes the
        // caller's bound.
        let b = Cost::new(0.25);
        assert_eq!(
            auto_small.with_hop_lower_bound(b).hop_lower_bound(),
            dense_small.min_hop()
        );
        assert_eq!(auto_large.with_hop_lower_bound(b).hop_lower_bound(), b);
    }

    #[test]
    fn from_fn_zero_diagonal() {
        let m = DenseMetric::from_fn(4, |_, _| Cost::new(5.0));
        for i in 0..4 {
            assert_eq!(m.cost(i, i), Cost::ZERO);
        }
        assert_eq!(m.cost(1, 2), Cost::new(5.0));
    }

    #[test]
    fn symmetric_builder() {
        let m = DenseMetric::symmetric_from_fn(3, |i, j| Cost::new((i + j) as f64));
        assert_eq!(m.cost(0, 2), m.cost(2, 0));
        assert_eq!(m.cost(1, 2), Cost::new(3.0));
    }

    #[test]
    fn path_cost_sums_hops() {
        let m = DenseMetric::from_fn(4, |i, j| Cost::new((i as f64 - j as f64).abs()));
        assert_eq!(m.path_cost(&[0, 2, 1, 3]), Cost::new(5.0));
        assert_eq!(m.path_cost(&[2]), Cost::ZERO);
    }

    #[test]
    fn lazy_matches_dense_bit_for_bit() {
        let f = |i: usize, j: usize| Cost::new(((i * 7 + j * 3) % 11) as f64 + 0.25);
        let dense = DenseMetric::from_fn(6, f);
        let lazy = LazyMetric::from_fn(6, f);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(DenseMetric::cost(&dense, i, j), Metric::cost(&lazy, i, j));
            }
        }
        assert_eq!(lazy.rows_built(), 6);
        assert_eq!(lazy.evictions(), 0);
    }

    #[test]
    fn lazy_builds_rows_on_demand_only() {
        let lazy = LazyMetric::from_fn(8, |i, j| Cost::new((i + j) as f64));
        assert_eq!(lazy.rows_built(), 0);
        assert_eq!(Metric::cost(&lazy, 3, 5), Cost::new(8.0));
        assert_eq!(Metric::cost(&lazy, 3, 1), Cost::new(4.0));
        assert_eq!(lazy.rows_built(), 1);
    }

    #[test]
    fn lazy_eviction_is_stale_first_and_deterministic() {
        let lazy = LazyMetric::with_row_cap(4, 2, |i, j| Cost::new((i * 10 + j) as f64));
        let _ = Metric::cost(&lazy, 0, 1); // rows: {0}
        let _ = Metric::cost(&lazy, 1, 0); // rows: {0, 1}
        let _ = Metric::cost(&lazy, 0, 2); // touch 0: now 1 is stalest
        let _ = Metric::cost(&lazy, 2, 3); // evicts 1
        assert_eq!(lazy.evictions(), 1);
        // Row 1 rebuilds transparently with identical values.
        assert_eq!(Metric::cost(&lazy, 1, 3), Cost::new(13.0));
        assert_eq!(lazy.rows_built(), 4);
        assert_eq!(lazy.evictions(), 2);
    }

    #[test]
    fn pinned_and_capped_stores_answer_identically() {
        // cap >= n takes the lock-free write-once path; cap < n the LRU
        // path. Same oracle, same answers, bit for bit.
        let f = |i: usize, j: usize| Cost::new(((i * 13 + j * 5) % 9) as f64 + 0.5);
        let pinned = LazyMetric::with_row_cap(5, 5, f);
        let capped = LazyMetric::with_row_cap(5, 2, f);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(Metric::cost(&pinned, i, j), Metric::cost(&capped, i, j));
            }
        }
        assert_eq!(pinned.rows_built(), 5);
        assert_eq!(pinned.evictions(), 0);
        assert!(capped.evictions() > 0);
    }

    #[test]
    fn dense_trait_bound_is_min_hop() {
        let m = DenseMetric::from_fn(3, |i, j| Cost::new((i + j) as f64));
        assert_eq!(Metric::hop_lower_bound(&m), m.min_hop());
        let lazy = LazyMetric::from_fn(3, |i, j| Cost::new((i + j) as f64));
        assert_eq!(lazy.hop_lower_bound(), Cost::ZERO);
    }

    #[test]
    fn triangle_violation_detected() {
        let mut d = DenseMetric::from_fn(3, |_, _| Cost::new(1.0));
        // Force a violation: 0-2 much longer than 0-1-2 (entries (0,2), (2,0)).
        d.d[2] = Cost::new(10.0);
        d.d[6] = Cost::new(10.0);
        assert!(!d.respects_triangle_inequality(1e-9));
    }
}

//! Quickstart: build a small cloud network, embed a service forest with
//! SOFDA, and compare against the baselines and the exact optimum.
//!
//! Run with `cargo run --release --example quickstart`.

use sof::core::{solve_sofda, Network, NodeKind, Request, ServiceChain, SofInstance, SofdaConfig};
use sof::graph::{Cost, Graph, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-switch ring with two cross links.
    let mut g = Graph::with_nodes(8);
    for i in 0..8 {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 8), Cost::new(1.0));
    }
    g.add_edge(NodeId::new(0), NodeId::new(4), Cost::new(1.5));
    g.add_edge(NodeId::new(2), NodeId::new(6), Cost::new(1.5));
    let mut net = Network::all_switches(g);
    // Four VMs with assorted setup costs.
    for (v, c) in [(1usize, 0.8), (3, 1.2), (5, 0.6), (7, 1.0)] {
        net.make_vm(NodeId::new(v), Cost::new(c));
    }
    // A VM attached off-ring (e.g., in a data center).
    let dc_vm = net.add_node(NodeKind::Vm, Cost::new(0.3));
    net.graph_mut()
        .add_edge(dc_vm, NodeId::new(4), Cost::new(0.2));

    let inst = SofInstance::new(
        net,
        Request::new(
            vec![NodeId::new(0), NodeId::new(4)], // candidate sources
            vec![NodeId::new(2), NodeId::new(6)], // destinations
            ServiceChain::from_names(["transcoder", "watermark"]),
        ),
    )?;

    let out = solve_sofda(&inst, &SofdaConfig::default())?;
    out.forest.validate(&inst)?;
    println!("SOFDA forest cost: {}", out.cost);
    println!("  trees: {}", out.forest.stats().trees);
    println!("  VMs  : {}", out.forest.stats().used_vms);
    for w in &out.forest.walks {
        let hops: Vec<String> = w.nodes.iter().map(|n| n.to_string()).collect();
        println!("  {} ⇐ {}  via {}", w.destination, w.source, hops.join("→"));
    }

    // Every other registered solver on the same instance (baselines,
    // exact, single-source, distributed — whatever the registry knows).
    for solver in sof::solvers::all() {
        if solver.name() == "SOFDA" || !solver.supports(&inst) {
            continue;
        }
        let r = solver.solve(&inst, &SofdaConfig::default())?;
        println!("{:<8} cost: {}", solver.name(), r.cost);
    }

    // Exact optimum (small instance → instant).
    let exact = sof::exact::solve_exact(&inst, 300)?;
    println!("OPT      cost: {} (optimal: {})", exact.cost, exact.optimal);
    assert!(out.cost.total() >= exact.cost);
    Ok(())
}

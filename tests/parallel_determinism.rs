//! Parallel-vs-serial equivalence suite: the parallel layers introduced by
//! `sof_par` — per-seed sweep averaging, the `SessionPool`, and the exact
//! solver's forked branch evaluation — must produce results **identical**
//! to the serial path for any thread count: costs bit-equal, forests
//! structurally equal.
//!
//! Every test runs the same computation at threads ∈ {1, 2, 8} and
//! compares against the 1-thread result with exact (bit-level) equality.
//! Thread counts are passed explicitly (never through the process-global
//! `--threads`/`SOF_THREADS` override) so the tests cannot race each other.

use sof::core::{
    Network, OnlineConfig, OnlineSession, Request, ServiceChain, ServiceForest, SessionPool,
    SofInstance, Sofda, SofdaConfig,
};
use sof::exact::solve_exact_with;
use sof::graph::{generators, Cost, CostRange, NodeId, Rng64};
use sof::sim::{ChurnParams, ChurnStream, WorkloadParams};
use sof::topo::{build_instance, softlayer, ScenarioParams};
use sof_bench::{average_with, comparison_sweep_tables};

const THREADS: [usize; 3] = [1, 2, 8];

#[test]
fn comparison_sweeps_are_thread_count_independent() {
    let topo = softlayer();
    let algos = sof::solvers::comparison_set(false);
    let serial = comparison_sweep_tables(&topo, &algos, 2, 1000, 1, 1);
    assert!(!serial.is_empty() && serial.iter().all(|t| !t.rows.is_empty()));
    // Something actually solved: at least one mean cost present.
    assert!(serial
        .iter()
        .flat_map(|t| t.rows.iter().flatten())
        .any(Option::is_some));
    for threads in THREADS {
        let parallel = comparison_sweep_tables(&topo, &algos, 2, 1000, 1, threads);
        // SweepTable: PartialEq compares every mean cost bit-for-bit.
        assert_eq!(parallel, serial, "threads={threads}");
    }
}

#[test]
fn average_is_bit_equal_across_thread_counts() {
    let topo = softlayer();
    let make = |seed: u64| {
        let mut p = ScenarioParams::paper_defaults().with_seed(seed);
        p.destinations = 4;
        p.sources = 5;
        p.vm_count = 12;
        build_instance(&topo, &p)
    };
    let sofda = Sofda;
    let (serial_cost, serial_vms, _) =
        average_with(&sofda, 6, 300, &SofdaConfig::default(), make, 1).unwrap();
    for threads in THREADS {
        let (cost, vms, _) =
            average_with(&sofda, 6, 300, &SofdaConfig::default(), make, threads).unwrap();
        // Means fold in seed order, so even the f64 rounding is identical.
        assert_eq!(cost.to_bits(), serial_cost.to_bits(), "threads={threads}");
        assert_eq!(vms.to_bits(), serial_vms.to_bits(), "threads={threads}");
    }
}

fn churn_session(seed: u64) -> (OnlineSession, ChurnStream) {
    let topo = softlayer();
    let mut p = ScenarioParams::paper_defaults().with_seed(seed);
    p.vm_count = topo.dc_nodes.len() * 5;
    p.chain_len = 3;
    let session = OnlineSession::new(
        build_instance(&topo, &p),
        Box::new(Sofda),
        SofdaConfig::default().with_seed(seed),
        OnlineConfig::default(),
    );
    let params = ChurnParams {
        base: WorkloadParams {
            sources: (4, 6),
            destinations: (6, 9),
            chain_len: 3,
            demand_mbps: 5.0,
        },
        leaves: (1, 2),
        joins: (1, 2),
    };
    (session, ChurnStream::new(params, 27, seed))
}

/// Replays `events` arrivals of per-group churn through a fresh pool of
/// `groups` sessions on `threads` workers; returns per-session accumulated
/// costs and final standing forests.
fn run_pool(groups: u64, events: usize, threads: usize) -> (Vec<f64>, Vec<ServiceForest>) {
    let (sessions, mut streams): (Vec<OnlineSession>, Vec<ChurnStream>) =
        (0..groups).map(|g| churn_session(50 + g)).unzip();
    let mut pool = SessionPool::new(sessions).with_threads(threads);
    for step in 0..events {
        let snapshots: Vec<Request> = streams
            .iter_mut()
            .map(|s| {
                if step == 0 {
                    s.current().clone()
                } else {
                    s.next_request()
                }
            })
            .collect();
        let reports = pool.arrive_each(&snapshots);
        assert!(reports.iter().all(|r| r.is_ok()), "threads={threads}");
    }
    let costs = pool.accumulated_costs();
    let forests = pool
        .into_sessions()
        .into_iter()
        .map(|s| s.forest().expect("standing forest").clone())
        .collect();
    (costs, forests)
}

#[test]
fn session_pool_matches_serial_sessions() {
    let (serial_costs, serial_forests) = run_pool(5, 6, 1);
    assert!(serial_costs.iter().all(|&c| c > 0.0));
    for threads in THREADS {
        let (costs, forests) = run_pool(5, 6, threads);
        let bits: Vec<u64> = costs.iter().map(|c| c.to_bits()).collect();
        let serial_bits: Vec<u64> = serial_costs.iter().map(|c| c.to_bits()).collect();
        assert_eq!(bits, serial_bits, "threads={threads}");
        // Structural equality: same walks, same VNF placements.
        assert_eq!(forests, serial_forests, "threads={threads}");
    }
}

fn exact_instance(seed: u64, dests: usize) -> SofInstance {
    let mut rng = Rng64::seed_from(seed);
    let g = generators::gnp_connected(16, 0.2, CostRange::new(1.0, 6.0), &mut rng);
    let mut net = Network::all_switches(g);
    let picks = rng.sample_indices(16, 4 + 2 + dests);
    for &v in &picks[..4] {
        net.make_vm(NodeId::new(v), Cost::new(rng.range_f64(0.5, 4.0)));
    }
    SofInstance::new(
        net,
        Request::new(
            vec![NodeId::new(picks[4]), NodeId::new(picks[5])],
            picks[6..6 + dests]
                .iter()
                .map(|&i| NodeId::new(i))
                .collect(),
            ServiceChain::with_len(2),
        ),
    )
    .unwrap()
}

#[test]
fn exact_solver_matches_serial_search_exactly() {
    for seed in [2u64, 9, 23] {
        let inst = exact_instance(seed, 5);
        let serial = solve_exact_with(&inst, 200, 1).unwrap();
        serial.forest.validate(&inst).unwrap();
        for threads in THREADS {
            let parallel = solve_exact_with(&inst, 200, threads).unwrap();
            // Identical search: same incumbent, same bound, same node
            // count, structurally identical forest.
            assert_eq!(parallel.cost, serial.cost, "seed={seed} threads={threads}");
            assert_eq!(
                parallel.cost.value().to_bits(),
                serial.cost.value().to_bits(),
                "seed={seed} threads={threads}"
            );
            assert_eq!(parallel.lower_bound, serial.lower_bound);
            assert_eq!(parallel.optimal, serial.optimal);
            assert_eq!(
                parallel.nodes_explored, serial.nodes_explored,
                "seed={seed} threads={threads}: exploration order diverged"
            );
            assert_eq!(
                parallel.forest, serial.forest,
                "seed={seed} threads={threads}"
            );
        }
    }
}

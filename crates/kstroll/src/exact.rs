//! Exact k-stroll via branch-and-bound depth-first search.

use crate::{DenseMetric, Stroll};
use sof_graph::Cost;

/// Upper bound on the DFS search-space estimate accepted by
/// [`estimated_work`]-guarded callers (the `Auto` solver).
pub const AUTO_EXACT_WORK_LIMIT: f64 = 5e6;

/// Estimates the unpruned DFS node count for an instance.
pub fn estimated_work(n: usize, k: usize) -> f64 {
    if k < 2 {
        return 1.0;
    }
    let interior = k - 2;
    let mut work = 1.0f64;
    for i in 0..interior {
        work *= (n.saturating_sub(2 + i)) as f64;
    }
    work
}

/// Finds the **minimum-cost** simple path from `source` to `target` visiting
/// exactly `k` distinct nodes, by exhaustive search with cost pruning.
///
/// Returns `None` when no such path exists (`k > n`, or `k != 1` with
/// `source == target`, or `k < 2` with distinct endpoints).
///
/// # Examples
///
/// ```
/// use sof_kstroll::{exact_stroll, DenseMetric};
/// use sof_graph::Cost;
///
/// let m = DenseMetric::from_fn(4, |i, j| Cost::new((i as f64 - j as f64).abs()));
/// let s = exact_stroll(&m, 0, 3, 4).unwrap();
/// assert_eq!(s.nodes, vec![0, 1, 2, 3]);
/// assert_eq!(s.cost, Cost::new(3.0));
/// ```
pub fn exact_stroll(
    metric: &DenseMetric,
    source: usize,
    target: usize,
    k: usize,
) -> Option<Stroll> {
    let n = metric.len();
    if source >= n || target >= n || k > n {
        return None;
    }
    if source == target {
        return (k == 1).then(|| Stroll::from_nodes(metric, vec![source]));
    }
    if k < 2 {
        return None;
    }
    if k == 2 {
        return Some(Stroll::from_nodes(metric, vec![source, target]));
    }

    // Cheapest positive hop, used for the admissible lower bound.
    let mut min_edge = Cost::INFINITY;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                min_edge = min_edge.min(metric.cost(i, j));
            }
        }
    }

    let interior = k - 2;
    let mut used = vec![false; n];
    used[source] = true;
    used[target] = true;
    let mut path = vec![source];
    let mut best: Option<(Cost, Vec<usize>)> = None;

    // Candidate pool excluding the endpoints.
    let candidates: Vec<usize> = (0..n).filter(|&v| v != source && v != target).collect();

    #[allow(clippy::too_many_arguments)] // recursion state threaded explicitly
    fn dfs(
        metric: &DenseMetric,
        candidates: &[usize],
        target: usize,
        remaining: usize,
        min_edge: Cost,
        cur_cost: Cost,
        path: &mut Vec<usize>,
        used: &mut [bool],
        best: &mut Option<(Cost, Vec<usize>)>,
    ) {
        let cur = *path.last().expect("path never empty");
        if remaining == 0 {
            let total = cur_cost + metric.cost(cur, target);
            if best.as_ref().is_none_or(|(b, _)| total < *b) {
                let mut nodes = path.clone();
                nodes.push(target);
                *best = Some((total, nodes));
            }
            return;
        }
        // Lower bound: every remaining hop (including closing) costs at
        // least `min_edge`.
        if let Some((b, _)) = best {
            let bound = cur_cost + min_edge * (remaining as f64 + 1.0);
            if bound >= *b {
                return;
            }
        }
        // Visit nearest-first for stronger pruning.
        let mut order: Vec<usize> = candidates.iter().copied().filter(|&v| !used[v]).collect();
        order.sort_by_key(|&v| metric.cost(cur, v));
        for v in order {
            used[v] = true;
            path.push(v);
            dfs(
                metric,
                candidates,
                target,
                remaining - 1,
                min_edge,
                cur_cost + metric.cost(cur, v),
                path,
                used,
                best,
            );
            path.pop();
            used[v] = false;
        }
    }

    dfs(
        metric,
        &candidates,
        target,
        interior,
        min_edge,
        Cost::ZERO,
        &mut path,
        &mut used,
        &mut best,
    );
    best.map(|(_, nodes)| Stroll::from_nodes(metric, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> DenseMetric {
        DenseMetric::from_fn(n, |i, j| Cost::new((i as f64 - j as f64).abs()))
    }

    #[test]
    fn shortest_with_all_nodes_is_monotone_line() {
        let m = line(5);
        let s = exact_stroll(&m, 0, 4, 5).unwrap();
        assert_eq!(s.nodes, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.cost, Cost::new(4.0));
    }

    #[test]
    fn k_two_is_direct_edge() {
        let m = line(5);
        let s = exact_stroll(&m, 1, 3, 2).unwrap();
        assert_eq!(s.nodes, vec![1, 3]);
        assert_eq!(s.cost, Cost::new(2.0));
    }

    #[test]
    fn detour_forced_by_k() {
        // Visiting 4 distinct nodes on the line from 0 to 1 forces a detour.
        let m = line(4);
        let s = exact_stroll(&m, 0, 1, 4).unwrap();
        s.validate(&m, 0, 1, 4).unwrap();
        // Best: 0,3,2,1 -> 3 + 1 + 1 = 5 or 0,2,3,1: 2+1+2=5.
        assert_eq!(s.cost, Cost::new(5.0));
    }

    #[test]
    fn infeasible_cases() {
        let m = line(3);
        assert!(exact_stroll(&m, 0, 2, 4).is_none()); // k > n
        assert!(exact_stroll(&m, 0, 0, 2).is_none()); // s == t, k != 1
        assert!(exact_stroll(&m, 0, 2, 1).is_none()); // k < 2, s != t
        assert_eq!(exact_stroll(&m, 1, 1, 1).unwrap().nodes, vec![1]);
    }

    #[test]
    fn work_estimate_grows() {
        assert_eq!(estimated_work(10, 2), 1.0);
        assert_eq!(estimated_work(10, 3), 8.0);
        assert_eq!(estimated_work(10, 4), 8.0 * 7.0);
    }
}

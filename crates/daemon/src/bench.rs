//! The closed-loop daemon benchmark behind `sof serve-bench`: N client
//! threads, each holding one keep-alive connection, drive the wire API as
//! fast as the daemon answers; the report carries requests/sec and
//! p50/p99 latency (the `BENCH_8` trajectory entry).

use crate::client::Client;
use sof_spec::value::json_f64;
use std::io;
use std::net::SocketAddr;
use std::time::Instant;

/// Shape of one benchmark run.
#[derive(Clone, Copy, Debug)]
pub struct BenchOptions {
    /// Concurrent connections (one client thread each).
    pub connections: usize,
    /// Total request target across all connections (floored at 4 per
    /// connection: create + join + leave + delete).
    pub requests: usize,
}

impl Default for BenchOptions {
    fn default() -> BenchOptions {
        BenchOptions {
            connections: 4,
            requests: 2000,
        }
    }
}

/// What a run measured.
#[derive(Clone, Copy, Debug)]
pub struct BenchReport {
    /// Connections driven.
    pub connections: usize,
    /// Requests completed (success or 4xx — both are answered requests).
    pub requests: usize,
    /// Responses with an unexpected status, or transport failures.
    pub errors: usize,
    /// Wall-clock for the whole run (ms).
    pub wall_ms: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Median request latency (ms).
    pub p50_ms: f64,
    /// 99th-percentile request latency (ms).
    pub p99_ms: f64,
}

impl BenchReport {
    /// The report as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"connections\":{},\"requests\":{},\"errors\":{},\"wall_ms\":{},\
             \"requests_per_sec\":{},\"p50_ms\":{},\"p99_ms\":{}}}",
            self.connections,
            self.requests,
            self.errors,
            json_f64((self.wall_ms * 10.0).round() / 10.0),
            json_f64((self.requests_per_sec * 10.0).round() / 10.0),
            json_f64((self.p50_ms * 1000.0).round() / 1000.0),
            json_f64((self.p99_ms * 1000.0).round() / 1000.0),
        )
    }
}

/// The two-region topology every benchmark session embeds on. Access
/// nodes 0–5 are us-east (DCs among them), 6–11 eu-west.
const BENCH_TOPOLOGY: &str = r#"{"name":"bench","regions":[
  {"name":"us-east","nodes":6,"dcs":2},
  {"name":"eu-west","nodes":6,"dcs":2}
],"gateway_links":2,"seed":7}"#;

/// Registers the benchmark topology (idempotent: an already-registered
/// `bench` topology is fine).
///
/// # Errors
///
/// Transport failures, or an unexpected (non-200/409) response status.
pub fn register_bench_topology(addr: SocketAddr) -> io::Result<()> {
    let mut client = Client::new(addr);
    let (status, body) = client.request("POST", "/v1/topologies", BENCH_TOPOLOGY)?;
    if status == 200 || status == 409 {
        Ok(())
    } else {
        Err(io::Error::other(format!(
            "registering the bench topology failed with {status}: {body}"
        )))
    }
}

fn percentile(sorted_ms: &[f64], pct: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * pct).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Runs the closed loop against a daemon at `addr` (which must already
/// serve the `bench` topology — see [`register_bench_topology`]).
///
/// Each connection cycles create → (join ↔ leave)\* → delete on its own
/// session; every request is timed individually.
///
/// # Errors
///
/// Only setup failures error out; per-request failures are counted in
/// [`BenchReport::errors`].
pub fn run_bench(addr: SocketAddr, opts: BenchOptions) -> io::Result<BenchReport> {
    let connections = opts.connections.max(1);
    let per_conn = (opts.requests / connections).max(4);
    let t0 = Instant::now();
    let mut threads = Vec::with_capacity(connections);
    for conn in 0..connections {
        threads.push(std::thread::spawn(move || drive(addr, conn, per_conn)));
    }
    let mut latencies: Vec<f64> = Vec::with_capacity(connections * per_conn);
    let mut errors = 0usize;
    for t in threads {
        match t.join() {
            Ok((lat, errs)) => {
                latencies.extend(lat);
                errors += errs;
            }
            Err(_) => errors += per_conn,
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    latencies.sort_by(|a, b| a.total_cmp(b));
    let requests = latencies.len();
    Ok(BenchReport {
        connections,
        requests,
        errors,
        wall_ms,
        requests_per_sec: requests as f64 / (wall_ms / 1e3).max(1e-9),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
    })
}

/// One connection's closed loop; returns (per-request latencies in ms,
/// unexpected-response count).
fn drive(addr: SocketAddr, conn: usize, budget: usize) -> (Vec<f64>, usize) {
    let mut client = Client::new(addr);
    let mut latencies = Vec::with_capacity(budget);
    let mut errors = 0usize;
    let mut session: Option<u64> = None;
    let mut joined = false;
    let timed = |client: &mut Client,
                 latencies: &mut Vec<f64>,
                 errors: &mut usize,
                 method: &str,
                 path: &str,
                 body: &str|
     -> Option<String> {
        let t = Instant::now();
        let outcome = client.request(method, path, body);
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
        match outcome {
            Ok((200, response)) => Some(response),
            Ok(_) | Err(_) => {
                *errors += 1;
                None
            }
        }
    };
    while latencies.len() < budget {
        match session {
            None => {
                let body = format!(
                    "{{\"topology\":\"bench\",\"sources\":[0],\"destinations\":[3,9],\
                     \"chain_len\":2,\"seed\":{},\"ttl_secs\":0}}",
                    100 + conn
                );
                let response = timed(
                    &mut client,
                    &mut latencies,
                    &mut errors,
                    "POST",
                    "/v1/sessions",
                    &body,
                );
                session = response.as_deref().and_then(parse_id);
                joined = false;
            }
            Some(id) => {
                let remaining = budget - latencies.len();
                if remaining == 1 {
                    timed(
                        &mut client,
                        &mut latencies,
                        &mut errors,
                        "DELETE",
                        &format!("/v1/sessions/{id}"),
                        "",
                    );
                    session = None;
                } else if joined {
                    timed(
                        &mut client,
                        &mut latencies,
                        &mut errors,
                        "POST",
                        &format!("/v1/sessions/{id}/leave"),
                        "{\"destination\":5}",
                    );
                    joined = false;
                } else {
                    timed(
                        &mut client,
                        &mut latencies,
                        &mut errors,
                        "POST",
                        &format!("/v1/sessions/{id}/join"),
                        "{\"destination\":5}",
                    );
                    joined = true;
                }
            }
        }
    }
    if let Some(id) = session {
        // Untimed cleanup when the budget ran out mid-cycle.
        let _ = client.request("DELETE", &format!("/v1/sessions/{id}"), "");
    }
    (latencies, errors)
}

/// Pulls `"id":N` out of a create/join response without a full JSON parse.
fn parse_id(response: &str) -> Option<u64> {
    let idx = response.find("\"id\":")?;
    let rest = &response[idx + 5..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

//! Legacy shim: `table1` now delegates to the bundled `table1` preset spec
//! (see `crates/spec/specs/table1.toml`); same flags, same output.
fn main() {
    sof_spec::shim::legacy_main("table1");
}

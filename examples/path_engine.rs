//! Microbenchmark for PR 5's two amortization layers:
//!
//! 1. **PathEngine**: cold (first-sight) vs warm (cache-hit) shortest-path
//!    query latency, plus the cost of an epoch-bump invalidation.
//! 2. **sof_par pool**: per-call overhead of `par_map_indexed` on tiny
//!    tasks through the persistent pool. Run once normally and once with
//!    `SOF_PAR_POOL=0` to compare against the legacy spawn-per-call path
//!    (the flag is latched at first use, so it cannot toggle in-process).
//!
//! ```sh
//! cargo run --release --example path_engine
//! SOF_PAR_POOL=0 cargo run --release --example path_engine
//! ```

use sof::graph::{generators, Cost, CostRange, NodeId, PathEngine, Rng64, ShortestPaths};
use std::time::Instant;

fn main() {
    let mut rng = Rng64::seed_from(0xBE7C);
    let g = generators::inet_like(2000, 4000, CostRange::new(1.0, 9.0), &mut rng);
    let sources: Vec<NodeId> = rng
        .sample_indices(2000, 64)
        .into_iter()
        .map(NodeId::new)
        .collect();

    println!(
        "# PathEngine on inet-like n={} m={}",
        g.node_count(),
        g.edge_count()
    );

    // Plain Dijkstra baseline: fresh allocation per query.
    let t = Instant::now();
    for &s in &sources {
        let sp = ShortestPaths::from_source(&g, s);
        std::hint::black_box(sp.dist(NodeId::new(0)));
    }
    let plain = t.elapsed();
    println!(
        "plain from_source      : {:>9.1?} total, {:>8.1?}/query",
        plain,
        plain / sources.len() as u32
    );

    // Cold engine: same Dijkstras plus one snapshot copy each.
    let engine = PathEngine::new();
    let t = Instant::now();
    for &s in &sources {
        let sp = engine.from_source(&g, s);
        std::hint::black_box(sp.dist(NodeId::new(0)));
    }
    let cold = t.elapsed();
    println!(
        "engine, cold (misses)  : {:>9.1?} total, {:>8.1?}/query",
        cold,
        cold / sources.len() as u32
    );

    // Warm engine: pure cache hits, zero O(n) work.
    const WARM_ROUNDS: u32 = 100;
    let t = Instant::now();
    for _ in 0..WARM_ROUNDS {
        for &s in &sources {
            let sp = engine.from_source(&g, s);
            std::hint::black_box(sp.dist(NodeId::new(0)));
        }
    }
    let warm = t.elapsed();
    println!(
        "engine, warm (hits)    : {:>9.1?} total, {:>8.1?}/query  ({}x queries)",
        warm,
        warm / (WARM_ROUNDS * sources.len() as u32),
        WARM_ROUNDS
    );
    println!("engine stats           : {:?}", engine.stats());

    // Invalidation: one cost bump stales the whole cache lazily.
    let mut g2 = g.clone();
    let t = Instant::now();
    g2.set_edge_cost(sof::graph::EdgeId::new(0), Cost::new(99.0));
    let bump = t.elapsed();
    let t = Instant::now();
    for &s in &sources {
        std::hint::black_box(engine.from_source(&g2, s).dist(NodeId::new(0)));
    }
    let refill = t.elapsed();
    println!("epoch bump             : {bump:>9.1?} (invalidates lazily); refill {refill:>9.1?}");

    // par_map overhead on tiny tasks: the exact solver's usage profile is
    // thousands of ~ms-scale batches of 4-5 items.
    let pool_mode = if std::env::var("SOF_PAR_POOL").map_or(true, |v| v.trim() != "0") {
        "persistent pool"
    } else {
        "legacy spawn-per-call"
    };
    println!(
        "\n# sof_par tiny-batch overhead ({pool_mode}, {} threads)",
        sof::par::current_threads()
    );
    let items: Vec<u64> = (0..5).collect();
    const BATCHES: u32 = 2000;
    let t = Instant::now();
    for round in 0..BATCHES as u64 {
        let out = sof::par::par_map_indexed(&items, 0, |i, &x| {
            // ~tens of µs of real work, like a small child relaxation.
            let mut acc = x + round;
            for k in 0..4000u64 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(k + i as u64);
            }
            acc
        })
        .unwrap();
        std::hint::black_box(out);
    }
    let batched = t.elapsed();
    println!(
        "{BATCHES} batches of {} tasks : {:>9.1?} total, {:>8.1?}/batch",
        items.len(),
        batched,
        batched / BATCHES
    );
    println!("(run with SOF_PAR_POOL=0 / SOF_THREADS=N to compare modes)");
}

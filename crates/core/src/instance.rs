//! Problem instance model: network, service chain, request.

use serde::{Deserialize, Serialize};
use sof_graph::{Cost, Graph, NodeId, PathEngine};
use std::fmt;

/// Role of a network node (§III of the paper: `V = M ∪ U`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A switch / router; setup cost is always 0.
    #[default]
    Switch,
    /// A virtual machine that can host exactly one VNF.
    Vm,
}

/// Errors raised when assembling an instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceError {
    /// A node id referenced by the request is out of range.
    NodeOutOfRange(NodeId),
    /// A switch was given a non-zero setup cost.
    SwitchWithCost(NodeId),
    /// The request has no sources.
    NoSources,
    /// The request has no destinations.
    NoDestinations,
    /// The network graph is not connected.
    Disconnected,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::NodeOutOfRange(n) => write!(f, "node {n} out of range"),
            InstanceError::SwitchWithCost(n) => write!(f, "switch {n} has non-zero setup cost"),
            InstanceError::NoSources => write!(f, "request needs at least one source"),
            InstanceError::NoDestinations => write!(f, "request needs at least one destination"),
            InstanceError::Disconnected => write!(f, "network graph must be connected"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// The physical network: a weighted graph plus per-node kind and setup cost.
///
/// # Examples
///
/// ```
/// use sof_core::{Network, NodeKind};
/// use sof_graph::{Graph, Cost, NodeId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
/// let mut net = Network::all_switches(g);
/// net.make_vm(NodeId::new(1), Cost::new(5.0));
/// assert_eq!(net.vms(), vec![NodeId::new(1)]);
/// assert_eq!(net.node_cost(NodeId::new(1)), Cost::new(5.0));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    graph: Graph,
    kinds: Vec<NodeKind>,
    costs: Vec<Cost>,
    /// Memoizing shortest-path service for this network's graph. Shared by
    /// clones (an `Arc` handle), skipped by serde (a deserialized network
    /// starts cold). Every shortest-path consumer in the workspace — the
    /// §VII-C dynamics, walk shortening, conflict resolution, the chain
    /// metric and the baselines — queries it instead of running throwaway
    /// Dijkstras, so a standing network (e.g. an `OnlineSession`) keeps its
    /// trees warm across operations. Graph mutations invalidate lazily via
    /// [`Graph::cost_epoch`].
    #[serde(skip, default)]
    paths: PathEngine,
}

impl Network {
    /// Wraps a graph with every node marked as a zero-cost switch.
    pub fn all_switches(graph: Graph) -> Network {
        let n = graph.node_count();
        Network {
            graph,
            kinds: vec![NodeKind::Switch; n],
            costs: vec![Cost::ZERO; n],
            paths: PathEngine::new(),
        }
    }

    /// Builds a network from explicit kinds and costs.
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError::SwitchWithCost`] when a switch carries a
    /// non-zero cost and panics if the vector lengths disagree.
    pub fn new(
        graph: Graph,
        kinds: Vec<NodeKind>,
        costs: Vec<Cost>,
    ) -> Result<Network, InstanceError> {
        assert_eq!(graph.node_count(), kinds.len(), "kinds length mismatch");
        assert_eq!(graph.node_count(), costs.len(), "costs length mismatch");
        for (i, (&k, &c)) in kinds.iter().zip(costs.iter()).enumerate() {
            if k == NodeKind::Switch && c != Cost::ZERO {
                return Err(InstanceError::SwitchWithCost(NodeId::new(i)));
            }
        }
        Ok(Network {
            graph,
            kinds,
            costs,
            paths: PathEngine::new(),
        })
    }

    /// Marks `v` as a VM with the given setup cost.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn make_vm(&mut self, v: NodeId, setup_cost: Cost) {
        self.kinds[v.index()] = NodeKind::Vm;
        self.costs[v.index()] = setup_cost;
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the graph (used by the online cost model to update
    /// link costs). Mutations renew the graph's cost epoch, which lazily
    /// invalidates the [`Network::paths`] cache — no eager clearing needed.
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// The network's shared shortest-path engine (see [`PathEngine`]).
    ///
    /// Queries are memoized per `(source set, cost epoch)`; results are
    /// bit-identical to running [`sof_graph::ShortestPaths`] directly.
    pub fn paths(&self) -> &PathEngine {
        &self.paths
    }

    /// Kind of node `v`.
    pub fn kind(&self, v: NodeId) -> NodeKind {
        self.kinds[v.index()]
    }

    /// Returns `true` when `v` is a VM.
    pub fn is_vm(&self, v: NodeId) -> bool {
        self.kinds[v.index()] == NodeKind::Vm
    }

    /// Setup cost of node `v` (0 for switches).
    pub fn node_cost(&self, v: NodeId) -> Cost {
        self.costs[v.index()]
    }

    /// Updates the setup cost of VM `v` (used by the online cost model).
    /// Writing the cost the VM already has is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `v` is a switch.
    pub fn set_node_cost(&mut self, v: NodeId, cost: Cost) {
        assert!(self.is_vm(v), "cannot assign a setup cost to switch {v}");
        if self.costs[v.index()] != cost {
            self.costs[v.index()] = cost;
        }
    }

    /// All VM nodes, in id order.
    pub fn vms(&self) -> Vec<NodeId> {
        (0..self.graph.node_count())
            .map(NodeId::new)
            .filter(|&v| self.is_vm(v))
            .collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Adds a fresh, isolated node of the given kind; link it afterwards
    /// with [`Graph::add_edge`] via [`Self::graph_mut`].
    ///
    /// # Panics
    ///
    /// Panics if a switch is given a non-zero setup cost.
    pub fn add_node(&mut self, kind: NodeKind, setup_cost: Cost) -> NodeId {
        assert!(
            kind == NodeKind::Vm || setup_cost == Cost::ZERO,
            "switches carry no setup cost"
        );
        let v = self.graph.add_node();
        self.kinds.push(kind);
        self.costs.push(setup_cost);
        v
    }

    /// Clones VM `v` into `copies` additional VM nodes with identical
    /// incident links and setup cost.
    ///
    /// This is the paper's device for letting one physical machine host
    /// several VNFs: "the scenario that requires a VM to support multiple
    /// VNFs can be addressed by first replicating the VM multiple times in
    /// the input graph".
    ///
    /// Returns the new node ids.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a VM.
    pub fn replicate_vm(&mut self, v: NodeId, copies: usize) -> Vec<NodeId> {
        assert!(self.is_vm(v), "{v} is not a VM");
        let neighbors: Vec<(NodeId, Cost)> = self
            .graph
            .neighbors(v)
            .map(|(n, e)| (n, self.graph.edge_cost(e)))
            .collect();
        let cost = self.node_cost(v);
        let mut out = Vec::with_capacity(copies);
        for _ in 0..copies {
            let c = self.graph.add_node();
            self.kinds.push(NodeKind::Vm);
            self.costs.push(cost);
            for &(n, w) in &neighbors {
                self.graph.add_edge(c, n, w);
            }
            out.push(c);
        }
        out
    }
}

/// An ordered chain of VNFs `C = (f1, …, f|C|)`.
///
/// # Examples
///
/// ```
/// use sof_core::ServiceChain;
/// let chain = ServiceChain::from_names(["transcoder", "watermark"]);
/// assert_eq!(chain.len(), 2);
/// assert_eq!(chain.name(1), "watermark");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceChain {
    names: Vec<String>,
}

impl ServiceChain {
    /// A chain of `len` generically named VNFs `f1 … f_len`.
    pub fn with_len(len: usize) -> ServiceChain {
        ServiceChain {
            names: (1..=len).map(|i| format!("f{i}")).collect(),
        }
    }

    /// A chain from explicit VNF names.
    pub fn from_names<I, S>(names: I) -> ServiceChain
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ServiceChain {
            names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// Chain length `|C|`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` for the empty chain (plain multicast).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of the VNF at 0-based position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Iterates over the VNF names in order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

/// A multicast request: sources holding the content, destinations demanding
/// it, and the VNF chain each destination's copy must traverse.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Candidate sources `S`.
    pub sources: Vec<NodeId>,
    /// Destinations `D`.
    pub destinations: Vec<NodeId>,
    /// The demanded chain `C`.
    pub chain: ServiceChain,
}

impl Request {
    /// Creates a request.
    pub fn new(sources: Vec<NodeId>, destinations: Vec<NodeId>, chain: ServiceChain) -> Request {
        Request {
            sources,
            destinations,
            chain,
        }
    }
}

/// A complete, validated SOF problem instance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SofInstance {
    /// The physical network.
    pub network: Network,
    /// The multicast request.
    pub request: Request,
}

impl SofInstance {
    /// Assembles and validates an instance.
    ///
    /// Sources and destinations are deduplicated (order preserved).
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] for out-of-range ids, empty source or
    /// destination sets, or a disconnected network.
    pub fn new(network: Network, mut request: Request) -> Result<SofInstance, InstanceError> {
        let n = network.node_count();
        dedup_preserving_order(&mut request.sources);
        dedup_preserving_order(&mut request.destinations);
        if request.sources.is_empty() {
            return Err(InstanceError::NoSources);
        }
        if request.destinations.is_empty() {
            return Err(InstanceError::NoDestinations);
        }
        for &v in request.sources.iter().chain(request.destinations.iter()) {
            if v.index() >= n {
                return Err(InstanceError::NodeOutOfRange(v));
            }
        }
        if !network.graph().is_connected() {
            return Err(InstanceError::Disconnected);
        }
        Ok(SofInstance { network, request })
    }

    /// Chain length `|C|`.
    pub fn chain_len(&self) -> usize {
        self.request.chain.len()
    }
}

fn dedup_preserving_order(v: &mut Vec<NodeId>) {
    let mut seen = std::collections::HashSet::new();
    v.retain(|x| seen.insert(*x));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
        g.add_edge(NodeId::new(2), NodeId::new(3), Cost::new(1.0));
        g
    }

    #[test]
    fn network_roles() {
        let mut net = Network::all_switches(tiny());
        assert!(!net.is_vm(NodeId::new(1)));
        net.make_vm(NodeId::new(1), Cost::new(2.0));
        net.make_vm(NodeId::new(2), Cost::new(3.0));
        assert_eq!(net.vms(), vec![NodeId::new(1), NodeId::new(2)]);
        assert_eq!(net.node_cost(NodeId::new(0)), Cost::ZERO);
    }

    #[test]
    fn switch_with_cost_rejected() {
        let g = tiny();
        let err = Network::new(
            g,
            vec![NodeKind::Switch; 4],
            vec![Cost::new(1.0), Cost::ZERO, Cost::ZERO, Cost::ZERO],
        )
        .unwrap_err();
        assert_eq!(err, InstanceError::SwitchWithCost(NodeId::new(0)));
    }

    #[test]
    fn replicate_vm_copies_links_and_cost() {
        let mut net = Network::all_switches(tiny());
        net.make_vm(NodeId::new(1), Cost::new(7.0));
        let clones = net.replicate_vm(NodeId::new(1), 2);
        assert_eq!(clones.len(), 2);
        for &c in &clones {
            assert!(net.is_vm(c));
            assert_eq!(net.node_cost(c), Cost::new(7.0));
            assert_eq!(net.graph().degree(c), 2); // mirrors node 1's links
        }
    }

    #[test]
    fn instance_validation() {
        let net = Network::all_switches(tiny());
        let req = Request::new(
            vec![NodeId::new(0)],
            vec![NodeId::new(3)],
            ServiceChain::with_len(1),
        );
        let inst = SofInstance::new(net.clone(), req).unwrap();
        assert_eq!(inst.chain_len(), 1);

        let bad = Request::new(vec![], vec![NodeId::new(3)], ServiceChain::default());
        assert_eq!(
            SofInstance::new(net.clone(), bad).unwrap_err(),
            InstanceError::NoSources
        );
        let oob = Request::new(
            vec![NodeId::new(9)],
            vec![NodeId::new(3)],
            ServiceChain::default(),
        );
        assert_eq!(
            SofInstance::new(net, oob).unwrap_err(),
            InstanceError::NodeOutOfRange(NodeId::new(9))
        );
    }

    #[test]
    fn request_dedup() {
        let net = Network::all_switches(tiny());
        let req = Request::new(
            vec![NodeId::new(0), NodeId::new(0), NodeId::new(1)],
            vec![NodeId::new(3), NodeId::new(3)],
            ServiceChain::with_len(1),
        );
        let inst = SofInstance::new(net, req).unwrap();
        assert_eq!(inst.request.sources.len(), 2);
        assert_eq!(inst.request.destinations.len(), 1);
    }

    #[test]
    fn chain_names() {
        let c = ServiceChain::with_len(3);
        assert_eq!(c.name(0), "f1");
        assert_eq!(c.iter().count(), 3);
        assert!(ServiceChain::default().is_empty());
    }
}

//! A memoizing shortest-path service shared across solvers and sessions.
//!
//! Every algorithm in the workspace bottoms out in (multi-source) Dijkstra
//! queries, and most of them repeat queries — the same source trees are
//! needed by SOFDA's metric closures, the §VII-C dynamics, walk shortening
//! and the baselines, often within one solve and always across solves on an
//! unchanged network. [`PathEngine`] turns those repeats into cache hits:
//!
//! * queries are keyed by `(sorted source set, cost epoch)` where the cost
//!   epoch is [`Graph::cost_epoch`] — a stamp renewed on every mutation —
//!   so a cost or topology change *lazily* invalidates the cache (no eager
//!   clearing, no risk of serving stale distances);
//! * misses run through one long-lived [`DijkstraWorkspace`], so the
//!   Dijkstra itself does no O(n) allocation once warm (the only O(n) work
//!   on a miss is the snapshot copied into the cache);
//! * hits return a cheap [`Arc`] clone of the cached tree — zero O(n)
//!   allocation on the warm path.
//!
//! # Edge-scoped (dirty-set) invalidation
//!
//! An epoch mismatch no longer condemns a cached tree outright. Cost-only
//! mutations are journaled per edge ([`Graph::cost_changes_since`]), and a
//! stale entry from the same lineage is **revalidated** — re-offered at the
//! current epoch without running Dijkstra, counted in
//! [`PathEngineStats::repairs`] — when every dirtied edge provably cannot
//! change the tree. The safety rule, per dirtied edge `{u, v}` with new
//! cost `c`:
//!
//! * the edge is not a parent (tree) edge of `u` or `v` in the cached tree,
//!   and
//! * it loses every relaxation strictly: `dist(u) + c > dist(v)` **and**
//!   `dist(v) + c > dist(u)` (or both endpoints are unreachable).
//!
//! Under that rule a fresh Dijkstra would relax the same edges in the same
//! `(cost, node)` heap order and lose on the dirtied edge everywhere it did
//! before, so the cached tree equals the recomputation **bit for bit** —
//! distances, parents and Voronoi sites included — at any thread count.
//! Anything else (a tree edge repriced, a shortcut created, a tie
//! introduced, a structural mutation, journal overflow) falls back to a
//! full recompute of that entry; untouched entries are never discarded.
//! This is the cheap half of a Ramalingam–Reps decremental update: repair
//! where a no-op is provable, recompute otherwise.
//!
//! # Sharing semantics
//!
//! The handle is internally synchronized (`Arc<Mutex<…>>`): cloning a
//! `PathEngine` shares the cache, so a `Network` clone keeps its warmth.
//! Because epochs are process-unique (two graphs share one only when one is
//! an unmutated clone of the other), a single engine may even be handed
//! graphs from different networks without ever mixing their entries. Own
//! one engine per standing network (what `sof_core::Network` does) when you
//! want isolation; share a handle when clones should stay warm.
//!
//! # Examples
//!
//! ```
//! use sof_graph::{Cost, Graph, NodeId, PathEngine};
//!
//! let mut g = Graph::with_nodes(3);
//! let e01 = g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
//! g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
//! let engine = PathEngine::new();
//! let sp = engine.from_source(&g, NodeId::new(0));
//! assert_eq!(sp.dist(NodeId::new(2)), Cost::new(3.0));
//! // The second query is a cache hit: same tree, no recomputation.
//! let again = engine.from_source(&g, NodeId::new(0));
//! assert!(std::sync::Arc::ptr_eq(&sp, &again));
//! // Mutating a cost bumps the graph's epoch; the stale entry is replaced.
//! g.set_edge_cost(e01, Cost::new(10.0));
//! assert_eq!(engine.from_source(&g, NodeId::new(0)).dist(NodeId::new(2)), Cost::new(12.0));
//! ```

use crate::{CostChange, DijkstraWorkspace, Graph, NodeId, ShortestPaths};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Returns `true` when none of the journaled `changes` can affect `paths`:
/// per dirtied edge, it is not a tree edge of the cached run and its new
/// cost loses every relaxation strictly (or it joins two unreachable
/// nodes). Under this rule a fresh Dijkstra reproduces `paths` bit for bit
/// (see the module docs for the argument).
fn tree_unaffected(graph: &Graph, paths: &ShortestPaths, changes: &[CostChange]) -> bool {
    changes.iter().all(|ch| {
        let edge = graph.edge(ch.edge);
        let (u, v) = edge.endpoints();
        let (du, dv) = (paths.dist(u), paths.dist(v));
        if !du.is_finite() && !dv.is_finite() {
            return true;
        }
        let is_tree_edge = |x: NodeId| paths.parent(x).is_some_and(|(_, e)| e == ch.edge);
        if is_tree_edge(u) || is_tree_edge(v) {
            return false;
        }
        du + edge.cost > dv && dv + edge.cost > du
    })
}

/// Source sets kept before stale/overflowing entries are evicted.
const MAX_ENTRIES: usize = 4096;

/// Trees retained per source set: one per recently-seen cost epoch, so a
/// handful of live graphs (e.g. a network and a mutated clone sharing one
/// engine) stay warm side by side instead of evicting each other on every
/// alternating query.
const EPOCHS_PER_SET: usize = 4;

/// Counters describing how the engine has been used. `stale` counts misses
/// for a source set that was cached at other cost epochs (`stale ⊆ misses`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathEngineStats {
    /// Queries served straight from the cache (zero O(n) work).
    pub hits: u64,
    /// Queries that ran a Dijkstra (first sight or new cost epoch).
    pub misses: u64,
    /// Misses whose source set was cached, but under different epochs.
    pub stale: u64,
    /// Bulk evictions triggered by the entry cap.
    pub evictions: u64,
    /// Stale entries revalidated without a Dijkstra: every journaled dirty
    /// edge was provably unable to change the tree (see the module docs).
    pub repairs: u64,
    /// Misses answered by the dynamic-SSSP repair pass instead of a cold
    /// Dijkstra: only the affected region was re-relaxed (see
    /// [`DijkstraWorkspace::repair`]). Counted *in addition to* `misses`
    /// and `stale` — the repaired tree is bit-identical to the cold
    /// solve it replaced, so downstream counters are unchanged.
    pub partial_repairs: u64,
}

#[derive(Debug, Default)]
struct EngineInner {
    /// Sorted, deduplicated source set → trees per cost epoch, most recent
    /// last (at most [`EPOCHS_PER_SET`], oldest dropped first).
    cache: HashMap<Vec<NodeId>, Vec<(u64, Arc<ShortestPaths>)>>,
    workspace: DijkstraWorkspace,
    stats: PathEngineStats,
}

/// A memoizing shortest-path engine; see the [module docs](self).
///
/// Cloning shares the underlying cache and workspace.
#[derive(Clone, Debug, Default)]
pub struct PathEngine {
    inner: Arc<Mutex<EngineInner>>,
}

impl PathEngine {
    /// Creates an empty engine.
    pub fn new() -> PathEngine {
        PathEngine::default()
    }

    /// The shortest-path tree from `source`, cached per
    /// [`Graph::cost_epoch`].
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn from_source(&self, graph: &Graph, source: NodeId) -> Arc<ShortestPaths> {
        // Hits probe with a borrowed slice — no key allocation on the
        // warm path (this is the hot single-source query of the §VII-C
        // dynamics and walk shortening).
        self.query(graph, std::slice::from_ref(&source))
    }

    /// The multi-source tree (Voronoi labelling included) for `sources`,
    /// cached per source *set*: order and duplicates do not affect the
    /// result, so the key is sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if any source is out of range.
    pub fn from_sources(&self, graph: &Graph, sources: &[NodeId]) -> Arc<ShortestPaths> {
        let mut key = sources.to_vec();
        key.sort_unstable();
        key.dedup();
        self.query(graph, &key)
    }

    /// `key` must be sorted and deduplicated.
    fn query(&self, graph: &Graph, key: &[NodeId]) -> Arc<ShortestPaths> {
        let epoch = graph.cost_epoch();
        let mut guard = self.inner.lock().expect("path engine lock");
        let inner = &mut *guard;
        if let Some(entries) = inner.cache.get_mut(key) {
            if let Some((_, paths)) = entries.iter().find(|(e, _)| *e == epoch) {
                inner.stats.hits += 1;
                return Arc::clone(paths);
            }
            // Edge-scoped invalidation: revalidate a same-lineage entry the
            // dirtied edges provably cannot affect (module docs), newest
            // first. The repaired tree is *added* at the current epoch —
            // the old entry survives, so a pre-mutation clone still hits.
            let repaired = entries.iter().rev().find_map(|(e0, paths)| {
                graph
                    .cost_changes_since(*e0)
                    .filter(|changes| tree_unaffected(graph, paths, changes))
                    .map(|_| Arc::clone(paths))
            });
            if let Some(paths) = repaired {
                inner.stats.repairs += 1;
                entries.push((epoch, Arc::clone(&paths)));
                if entries.len() > EPOCHS_PER_SET {
                    entries.remove(0);
                }
                return paths;
            }
            inner.stats.stale += 1;
            // Middle tier: dynamic-SSSP repair. The newest entry whose
            // lineage is still journaled gets its affected region
            // re-relaxed in place of a cold Dijkstra — bit-identical
            // output (docs/DYNSSSP.md), so only `partial_repairs` can
            // tell the difference.
            let candidate = entries.iter().rev().find_map(|(e0, paths)| {
                graph
                    .cost_changes_since(*e0)
                    .map(|changes| (Arc::clone(paths), changes))
            });
            if let Some((old, changes)) = candidate {
                if let Some(repaired) = inner.workspace.repair(graph, &old, key, changes) {
                    inner.stats.misses += 1;
                    inner.stats.partial_repairs += 1;
                    let paths = Arc::new(repaired);
                    entries.push((epoch, Arc::clone(&paths)));
                    if entries.len() > EPOCHS_PER_SET {
                        entries.remove(0);
                    }
                    return paths;
                }
            }
        }
        inner.stats.misses += 1;
        inner.workspace.run(graph, key.iter().copied());
        let paths = Arc::new(inner.workspace.snapshot());
        if inner.cache.len() >= MAX_ENTRIES && !inner.cache.contains_key(key) {
            // Drop source sets with no tree at the current epoch first; if
            // the cache is still full the whole map goes (rare, and
            // refilling is just warm-up work).
            inner
                .cache
                .retain(|_, entries| entries.iter().any(|(e, _)| *e == epoch));
            if inner.cache.len() >= MAX_ENTRIES {
                inner.cache.clear();
            }
            inner.stats.evictions += 1;
        }
        let entries = inner.cache.entry(key.to_vec()).or_default();
        entries.push((epoch, Arc::clone(&paths)));
        if entries.len() > EPOCHS_PER_SET {
            entries.remove(0);
        }
        paths
    }

    /// Usage counters (hits / misses / stale replacements / evictions /
    /// repairs).
    pub fn stats(&self) -> PathEngineStats {
        self.inner.lock().expect("path engine lock").stats
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("path engine lock").cache.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached tree (the workspace stays warm).
    pub fn clear(&self) {
        self.inner.lock().expect("path engine lock").cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cost;

    fn line(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        g
    }

    #[test]
    fn warm_queries_are_shared_and_allocation_free() {
        let g = line(6);
        let engine = PathEngine::new();
        let a = engine.from_source(&g, NodeId::new(0));
        let b = engine.from_source(&g, NodeId::new(0));
        assert!(Arc::ptr_eq(&a, &b), "hit must return the cached tree");
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // The single miss ran through the shared workspace exactly once and
        // a further hit does not touch it: no per-query O(n) allocation.
        let c = engine.from_source(&g, NodeId::new(0));
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(engine.stats().hits, 2);
        assert_eq!(engine.stats().misses, 1);
    }

    #[test]
    fn epoch_bump_invalidates_stale_entries() {
        let mut g = line(4);
        let engine = PathEngine::new();
        let before = engine.from_source(&g, NodeId::new(0));
        assert_eq!(before.dist(NodeId::new(3)), Cost::new(3.0));
        let e = g.edge_between(NodeId::new(2), NodeId::new(3)).unwrap();
        g.set_edge_cost(e, Cost::new(10.0));
        let after = engine.from_source(&g, NodeId::new(0));
        assert!(
            !Arc::ptr_eq(&before, &after),
            "stale entry must not be served"
        );
        assert_eq!(after.dist(NodeId::new(3)), Cost::new(12.0));
        let stats = engine.stats();
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.misses, 2);
        // The pre-mutation Arc still reads the old (consistent) snapshot.
        assert_eq!(before.dist(NodeId::new(3)), Cost::new(3.0));
    }

    #[test]
    fn diverged_clones_stay_warm_side_by_side() {
        // A graph and its mutated clone share one engine (the Network
        // clone semantics): alternating queries must all be hits after the
        // first sight of each epoch, not mutual evictions.
        let g1 = line(5);
        let mut g2 = g1.clone();
        let e = g2.edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
        g2.set_edge_cost(e, Cost::new(7.0));
        let engine = PathEngine::new();
        let s = NodeId::new(0);
        let first = engine.from_source(&g1, s);
        let second = engine.from_source(&g2, s);
        for _ in 0..3 {
            assert!(Arc::ptr_eq(&first, &engine.from_source(&g1, s)));
            assert!(Arc::ptr_eq(&second, &engine.from_source(&g2, s)));
        }
        let stats = engine.stats();
        assert_eq!(stats.misses, 2, "one Dijkstra per live epoch: {stats:?}");
        assert_eq!(stats.hits, 6);
        assert_eq!(first.dist(NodeId::new(1)), Cost::new(1.0));
        assert_eq!(second.dist(NodeId::new(1)), Cost::new(7.0));
    }

    #[test]
    fn scoped_invalidation_repairs_unaffected_trees() {
        // Path 0-1-2-3 (unit costs) with a costly shortcut 0-3, plus a
        // disconnected pair 4-5. Repricing k edges must evict/repair only
        // the trees those edges can touch; every other cached tree
        // survives with its entry intact (same Arc, no Dijkstra).
        let mut g = Graph::with_nodes(6);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
        let c = g.add_edge(NodeId::new(2), NodeId::new(3), Cost::new(1.0));
        let shortcut = g.add_edge(NodeId::new(0), NodeId::new(3), Cost::new(10.0));
        g.add_edge(NodeId::new(4), NodeId::new(5), Cost::new(1.0));
        let engine = PathEngine::new();
        let t0 = engine.from_source(&g, NodeId::new(0));
        let t4 = engine.from_source(&g, NodeId::new(4));
        assert_eq!(engine.stats().misses, 2);

        // Reprice the non-tree shortcut so it still strictly loses: both
        // trees are repaired — same Arcs, zero Dijkstras.
        g.set_edge_cost(shortcut, Cost::new(12.0));
        assert!(Arc::ptr_eq(&t0, &engine.from_source(&g, NodeId::new(0))));
        assert!(Arc::ptr_eq(&t4, &engine.from_source(&g, NodeId::new(4))));
        let s = engine.stats();
        assert_eq!((s.misses, s.stale, s.repairs), (2, 0, 2));
        // Once revalidated, further queries are plain hits.
        let hits_before = engine.stats().hits;
        assert!(Arc::ptr_eq(&t0, &engine.from_source(&g, NodeId::new(0))));
        assert_eq!(engine.stats().hits, hits_before + 1);

        // Reprice a tree edge of the 0-tree: that tree recomputes, but the
        // disconnected 4-tree (endpoints unreachable) is repaired again.
        g.set_edge_cost(c, Cost::new(5.0));
        let t0b = engine.from_source(&g, NodeId::new(0));
        assert!(
            !Arc::ptr_eq(&t0, &t0b),
            "a dirtied tree edge forces recompute"
        );
        assert_eq!(t0b.dist(NodeId::new(3)), Cost::new(7.0));
        assert!(Arc::ptr_eq(&t4, &engine.from_source(&g, NodeId::new(4))));
        let s = engine.stats();
        assert_eq!((s.misses, s.stale, s.repairs), (3, 1, 3));

        // A repricing that *creates* a shortcut may not be absorbed either.
        g.set_edge_cost(shortcut, Cost::new(2.0));
        let t0c = engine.from_source(&g, NodeId::new(0));
        assert!(
            !Arc::ptr_eq(&t0b, &t0c),
            "an improving edge forces recompute"
        );
        assert_eq!(t0c.dist(NodeId::new(3)), Cost::new(2.0));
    }

    #[test]
    fn affected_trees_are_partially_repaired() {
        // Repricing one edge of a 12-node line dirties a small region:
        // the stale miss must be answered by the repair pass, not a cold
        // Dijkstra, and the tree must still be exactly the fresh one.
        let mut g = line(12);
        let engine = PathEngine::new();
        let s = NodeId::new(0);
        let before = engine.from_source(&g, s);
        let e = g.edge_between(NodeId::new(9), NodeId::new(10)).unwrap();
        g.set_edge_cost(e, Cost::new(4.0));
        let after = engine.from_source(&g, s);
        assert!(!Arc::ptr_eq(&before, &after));
        let stats = engine.stats();
        assert_eq!(
            (stats.misses, stats.stale, stats.partial_repairs),
            (2, 1, 1),
            "the stale miss must go through the repair pass: {stats:?}"
        );
        let fresh = ShortestPaths::from_source(&g, s);
        for v in g.nodes() {
            assert_eq!(after.dist(v), fresh.dist(v));
            assert_eq!(after.parent(v), fresh.parent(v));
            assert_eq!(after.site(v), fresh.site(v));
        }
        // The repaired entry is a first-class cache citizen: same epoch
        // queries hit it.
        assert!(Arc::ptr_eq(&after, &engine.from_source(&g, s)));
        // Structural mutations sever the journal, so the next stale miss
        // falls back to a cold solve (partial_repairs unchanged).
        g.add_edge(NodeId::new(0), NodeId::new(11), Cost::new(0.5));
        let rerouted = engine.from_source(&g, s);
        assert_eq!(rerouted.dist(NodeId::new(11)), Cost::new(0.5));
        assert_eq!(engine.stats().partial_repairs, 1);
    }

    #[test]
    fn source_sets_are_canonicalized() {
        let g = line(5);
        let engine = PathEngine::new();
        let a = engine.from_sources(&g, &[NodeId::new(4), NodeId::new(0), NodeId::new(0)]);
        let b = engine.from_sources(&g, &[NodeId::new(0), NodeId::new(4)]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.dist(NodeId::new(2)), Cost::new(2.0));
        assert_eq!(a.site(NodeId::new(1)), Some(NodeId::new(0)));
        assert_eq!(engine.stats().hits, 1);
    }

    #[test]
    fn matches_plain_dijkstra() {
        let mut rng = crate::Rng64::seed_from(9);
        let g =
            crate::generators::gnp_connected(30, 0.15, crate::CostRange::new(1.0, 5.0), &mut rng);
        let engine = PathEngine::new();
        for s in [0usize, 7, 29] {
            let sp = engine.from_source(&g, NodeId::new(s));
            let reference = ShortestPaths::from_source(&g, NodeId::new(s));
            for v in g.nodes() {
                assert_eq!(sp.dist(v), reference.dist(v));
                assert_eq!(sp.parent(v), reference.parent(v));
                assert_eq!(sp.path_to(v), reference.path_to(v));
            }
        }
    }

    #[test]
    fn clones_share_the_cache() {
        let g = line(4);
        let engine = PathEngine::new();
        let shared = engine.clone();
        let a = engine.from_source(&g, NodeId::new(1));
        let b = shared.from_source(&g, NodeId::new(1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(shared.stats().hits, 1);
        assert_eq!(engine.len(), 1);
        engine.clear();
        assert!(shared.is_empty());
    }
}

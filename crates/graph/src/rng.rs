//! A small, fast, deterministic random number generator.
//!
//! Experiments in this workspace must be reproducible bit-for-bit from a
//! seed, independent of external crate versions, so the topology generators
//! and simulators use this xoshiro256** implementation instead of the `rand`
//! crate. (`rand`/`proptest` are still used in tests.)

/// Deterministic xoshiro256** PRNG seeded through SplitMix64.
///
/// # Examples
///
/// ```
/// use sof_graph::Rng64;
///
/// let mut a = Rng64::seed_from(42);
/// let mut b = Rng64::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Rng64 {
        // SplitMix64 expansion of the seed into the full state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Rng64 { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits scaled to [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range {lo}..{hi}");
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound {
                return (m >> 64) as usize;
            }
            // Rejection zone; recompute threshold lazily.
            let t = bound.wrapping_neg() % bound;
            if lo >= t {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.below(slice.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (in random order).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        // Floyd's algorithm for small k, full shuffle otherwise.
        if k * 4 < n {
            let mut chosen = std::collections::HashSet::with_capacity(k);
            let mut out = Vec::with_capacity(k);
            for j in n - k..n {
                let t = self.below(j + 1);
                let v = if chosen.contains(&t) { j } else { t };
                chosen.insert(v);
                out.push(v);
            }
            out
        } else {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            all
        }
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng64::seed_from(7);
        let mut b = Rng64::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from(1);
        let mut b = Rng64::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Rng64::seed_from(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.below(10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::seed_from(11);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
        let y = rng.range_f64(2.0, 4.0);
        assert!((2.0..4.0).contains(&y));
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng64::seed_from(5);
        for k in [0, 1, 5, 50, 100] {
            let s = rng.sample_indices(100, k);
            assert_eq!(s.len(), k);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in sample");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::seed_from(13);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

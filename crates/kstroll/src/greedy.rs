//! Greedy insertion heuristic with local-search polishing.

use crate::{Metric, Stroll};
use sof_graph::Cost;

/// Maximum improvement passes of the local search.
const MAX_PASSES: usize = 32;

/// Builds a k-stroll by cheapest insertion, then polishes it with
/// node-swap, relocation and 2-opt moves until a local optimum.
///
/// Deterministic; returns `None` on infeasible parameters (same contract as
/// [`crate::exact_stroll`]).
///
/// # Examples
///
/// ```
/// use sof_kstroll::{greedy_stroll, DenseMetric};
/// use sof_graph::Cost;
///
/// let m = DenseMetric::from_fn(5, |i, j| Cost::new((i as f64 - j as f64).abs()));
/// let s = greedy_stroll(&m, 0, 4, 5).unwrap();
/// assert_eq!(s.cost, Cost::new(4.0));
/// ```
pub fn greedy_stroll<M: Metric + ?Sized>(
    metric: &M,
    source: usize,
    target: usize,
    k: usize,
) -> Option<Stroll> {
    let n = metric.len();
    if source >= n || target >= n || k > n {
        return None;
    }
    if source == target {
        return (k == 1).then(|| Stroll::from_nodes(metric, vec![source]));
    }
    if k < 2 {
        return None;
    }
    let mut path = vec![source, target];
    let mut used = vec![false; n];
    used[source] = true;
    used[target] = true;

    // Cheapest-insertion construction. Rows of the current path nodes are
    // fetched once per insertion round (and `row(v)` once per candidate), so
    // metrics that expose borrowed rows serve the O(n·k) scan with plain
    // indexed loads; `None` rows fall back to the identical pointwise call.
    while path.len() < k {
        let path_rows: Vec<Option<&[Cost]>> = path.iter().map(|&a| metric.row(a)).collect();
        let mut best: Option<(Cost, usize, usize)> = None; // (delta, node, pos)
        for (v, &taken) in used.iter().enumerate() {
            if taken {
                continue;
            }
            let vrow = metric.row(v);
            for pos in 1..path.len() {
                let (a, b) = (path[pos - 1], path[pos]);
                let arow = path_rows[pos - 1];
                let av = match arow {
                    Some(r) => r[v],
                    None => metric.cost(a, v),
                };
                let vb = match vrow {
                    Some(r) => r[b],
                    None => metric.cost(v, b),
                };
                let ab = match arow {
                    Some(r) => r[b],
                    None => metric.cost(a, b),
                };
                let delta = av + vb - ab;
                if best.is_none_or(|(d, _, _)| delta < d) {
                    best = Some((delta, v, pos));
                }
            }
        }
        let (_, v, pos) = best?;
        path.insert(pos, v);
        used[v] = true;
    }

    // Local search.
    for _ in 0..MAX_PASSES {
        let mut improved = false;

        // Swap an interior node for an unused node. This scans every unused
        // node per position, so it borrows `row(a)`/`row(v)` where the
        // metric offers them (same values as the pointwise fallback).
        for i in 1..path.len() - 1 {
            let (a, b) = (path[i - 1], path[i + 1]);
            let arow = metric.row(a);
            let ac = |w: usize| match arow {
                Some(r) => r[w],
                None => metric.cost(a, w),
            };
            let old = ac(path[i]) + metric.cost(path[i], b);
            let mut best_v = None;
            let mut best_new = old;
            for (v, &taken) in used.iter().enumerate() {
                if taken {
                    continue;
                }
                let vb = match metric.row(v) {
                    Some(r) => r[b],
                    None => metric.cost(v, b),
                };
                let new = ac(v) + vb;
                if new < best_new {
                    best_new = new;
                    best_v = Some(v);
                }
            }
            if let Some(v) = best_v {
                used[path[i]] = false;
                used[v] = true;
                path[i] = v;
                improved = true;
            }
        }

        // 2-opt: reverse an interior segment.
        for i in 1..path.len() - 1 {
            for j in i + 1..path.len() - 1 {
                let (a, b) = (path[i - 1], path[j + 1]);
                let old = metric.cost(a, path[i]) + metric.cost(path[j], b);
                let new = metric.cost(a, path[j]) + metric.cost(path[i], b);
                if new < old {
                    path[i..=j].reverse();
                    improved = true;
                }
            }
        }

        // Relocate: move one interior node elsewhere if that is cheaper.
        for i in 1..path.len() - 1 {
            let v = path[i];
            let removed_gain = metric.cost(path[i - 1], v) + metric.cost(v, path[i + 1])
                - metric.cost(path[i - 1], path[i + 1]);
            let mut best_pos = None;
            let mut best_delta = Cost::INFINITY;
            for pos in 1..path.len() {
                if pos == i || pos == i + 1 {
                    continue;
                }
                let (a, b) = (path[pos - 1], path[pos]);
                let insert_cost = metric.cost(a, v) + metric.cost(v, b) - metric.cost(a, b);
                if insert_cost + Cost::new(1e-12) < removed_gain && insert_cost < best_delta {
                    best_pos = Some(pos);
                    best_delta = insert_cost;
                }
            }
            if let Some(pos) = best_pos {
                path.remove(i);
                let pos = if pos > i { pos - 1 } else { pos };
                path.insert(pos, v);
                improved = true;
            }
        }

        if !improved {
            break;
        }
    }
    Some(Stroll::from_nodes(metric, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact_stroll, DenseMetric};
    use sof_graph::Rng64;

    fn random_metric(n: usize, rng: &mut Rng64) -> DenseMetric {
        // Random points on a plane -> guaranteed metric.
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
        DenseMetric::symmetric_from_fn(n, |i, j| {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            Cost::new((dx * dx + dy * dy).sqrt())
        })
    }

    #[test]
    fn greedy_close_to_exact_on_random_euclidean() {
        let mut rng = Rng64::seed_from(77);
        let mut worst: f64 = 1.0;
        for _ in 0..30 {
            let m = random_metric(12, &mut rng);
            let k = 4 + rng.below(4); // 4..=7
            let g = greedy_stroll(&m, 0, 1, k).unwrap();
            g.validate(&m, 0, 1, k).unwrap();
            let e = exact_stroll(&m, 0, 1, k).unwrap();
            assert!(g.cost >= e.cost - Cost::new(1e-9));
            worst = worst.max(g.cost.value() / e.cost.value().max(1e-12));
        }
        assert!(worst < 1.3, "greedy ratio too large: {worst}");
    }

    #[test]
    fn feasibility_edge_cases() {
        let m = random_metric(5, &mut Rng64::seed_from(1));
        assert!(greedy_stroll(&m, 0, 4, 6).is_none());
        assert_eq!(greedy_stroll(&m, 2, 2, 1).unwrap().nodes, vec![2]);
        let direct = greedy_stroll(&m, 0, 4, 2).unwrap();
        assert_eq!(direct.nodes, vec![0, 4]);
    }

    #[test]
    fn visits_exactly_k_distinct() {
        let m = random_metric(10, &mut Rng64::seed_from(3));
        for k in 2..=10 {
            let s = greedy_stroll(&m, 0, 9, k).unwrap();
            s.validate(&m, 0, 9, k).unwrap();
        }
    }
}

//! # sof-exact — exact SOF solver (the paper's "CPLEX" column)
//!
//! The evaluation of the ICDCS'17 SOF paper compares SOFDA against optimal
//! solutions from CPLEX on its IP formulation. This crate reproduces that
//! reference point without a commercial solver (see DESIGN.md §5):
//!
//! * [`LayeredGraph`] — expands the network into `|C|+1` layers where a
//!   minimum directed Steiner arborescence equals an optimal forest relaxed
//!   of the one-VNF-per-VM constraint,
//! * [`directed_steiner`] — exact Dreyfus–Wagner DP over destination
//!   subsets on that graph,
//! * [`solve_exact`] — branch-and-bound on violated VMs, restoring IP
//!   constraint (6) and yielding the true optimum (plus a lower bound);
//!   child branches fork across `sof_par` workers sharing an atomic
//!   incumbent bound, with bit-identical results for any thread count
//!   ([`solve_exact_with`] takes the count explicitly),
//! * [`IpFormulation`] — the paper's IP built explicitly: variable /
//!   constraint counting, CPLEX-LP text output, and full constraint
//!   checking of any [`sof_core::ServiceForest`],
//! * [`ExactBudget`] — the destination-count budget schedule, and
//!   [`ExactSolver`] — the [`sof_core::Solver`]-trait adapter used by the
//!   solver registry and the evaluation's "CPLEX" column.
//!
//! # Examples
//!
//! ```
//! use sof_core::{Network, Request, ServiceChain, SofInstance};
//! use sof_exact::solve_exact;
//! use sof_graph::{Graph, Cost, NodeId};
//!
//! let mut g = Graph::with_nodes(4);
//! for i in 0..3 {
//!     g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
//! }
//! let mut net = Network::all_switches(g);
//! net.make_vm(NodeId::new(1), Cost::new(5.0));
//! net.make_vm(NodeId::new(2), Cost::new(1.0));
//! let inst = SofInstance::new(
//!     net,
//!     Request::new(vec![NodeId::new(0)], vec![NodeId::new(3)], ServiceChain::with_len(2)),
//! )?;
//! let out = solve_exact(&inst, 200)?;
//! assert!(out.optimal);
//! assert_eq!(out.cost, Cost::new(9.0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bb;
mod budget;
mod dw;
mod ip;
mod layered;

pub use bb::{solve_exact, solve_exact_with, ExactError, ExactOutcome};
pub use budget::{ExactBudget, ExactSolver};
pub use dw::{directed_steiner, Arborescence, RelaxationStats, Restrictions, SteinerRelaxation};
pub use ip::{IpFormulation, IpSize};
pub use layered::{Arc, LayeredGraph};

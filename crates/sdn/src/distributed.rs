//! Distributed SOFDA over multiple SDN controllers (§VI of the paper).
//!
//! The network is split into domains, one controller per domain. As in the
//! paper's ODL-SDNi design, each controller only sees its own domain's
//! topology and exchanges **border-router distance matrices** east-west; the
//! leader (the controller receiving the request) assembles an *abstract
//! graph* — border routers, sources, VMs and destinations connected by
//! intra-domain distance edges plus the physical inter-domain links — and
//! runs SOFDA on it. Hierarchical-routing exactness: any path decomposes at
//! domain boundaries, so abstract distances equal real distances. Selected
//! abstract links are finally expanded back into real paths by their owning
//! controllers (a message round-trip per link), and VNF conflicts are
//! resolved on the assembled walks exactly as in the centralized algorithm.
//!
//! Controllers run as real threads communicating over crossbeam channels;
//! [`DistributedOutcome::message_count`] reports the east-west traffic.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use sof_core::{
    DestWalk, Network, Request, ServiceForest, SofInstance, SofdaConfig, SolveError, SolveOutcome,
};
use sof_graph::{Cost, Graph, NodeId, PathEngine, PathEngineStats, Rng64, ShortestPaths};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

/// A partition of the network into controller domains.
#[derive(Clone, Debug)]
pub struct DomainPartition {
    /// `domain_of[v]` = controller index of node `v`.
    pub domain_of: Vec<usize>,
    /// Node lists per domain.
    pub domains: Vec<Vec<NodeId>>,
}

impl DomainPartition {
    /// Splits `graph` into `k` connected-ish domains by multi-seed BFS.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds the node count.
    pub fn new(graph: &Graph, k: usize, seed: u64) -> DomainPartition {
        let n = graph.node_count();
        assert!(k >= 1 && k <= n, "bad domain count {k} for {n} nodes");
        let mut rng = Rng64::seed_from(seed);
        let seeds = rng.sample_indices(n, k);
        let mut domain_of = vec![usize::MAX; n];
        let mut frontier: std::collections::VecDeque<(NodeId, usize)> = seeds
            .iter()
            .enumerate()
            .map(|(d, &s)| (NodeId::new(s), d))
            .collect();
        for &(s, d) in frontier.iter() {
            domain_of[s.index()] = d;
        }
        while let Some((u, d)) = frontier.pop_front() {
            for (v, _) in graph.neighbors(u) {
                if domain_of[v.index()] == usize::MAX {
                    domain_of[v.index()] = d;
                    frontier.push_back((v, d));
                }
            }
        }
        // Unreached nodes (disconnected graphs are rejected upstream, but be
        // safe): assign to domain 0.
        for d in domain_of.iter_mut() {
            if *d == usize::MAX {
                *d = 0;
            }
        }
        let mut domains = vec![Vec::new(); k];
        for (i, &d) in domain_of.iter().enumerate() {
            domains[d].push(NodeId::new(i));
        }
        DomainPartition { domain_of, domains }
    }

    /// Border nodes of a domain (incident to an inter-domain link).
    pub fn borders(&self, graph: &Graph, d: usize) -> Vec<NodeId> {
        self.domains[d]
            .iter()
            .copied()
            .filter(|&v| {
                graph
                    .neighbors(v)
                    .any(|(w, _)| self.domain_of[w.index()] != d)
            })
            .collect()
    }
}

/// East-west / controller messages.
#[derive(Clone, Debug)]
enum Message {
    /// Distance matrix among a domain's anchor nodes.
    AnchorMatrix {
        entries: Vec<(NodeId, NodeId, Cost)>,
    },
    /// Request: expand the abstract link `(a, b)` into a real path.
    Expand {
        a: NodeId,
        b: NodeId,
        reply: Sender<Vec<NodeId>>,
    },
    /// Terminate the controller thread.
    Shutdown,
}

/// Result of a distributed solve.
#[derive(Debug)]
pub struct DistributedOutcome {
    /// The assembled (real-network) solve outcome.
    pub outcome: SolveOutcome,
    /// Number of controller domains.
    pub domains: usize,
    /// Total east-west messages exchanged.
    pub message_count: usize,
    /// Aggregated per-domain shortest-path engine counters (cumulative over
    /// the process: domain state persists across rounds, so repeat solves on
    /// an unchanged network show growing `hits`).
    pub engine_stats: PathEngineStats,
}

/// Persistent controller state for one domain: the local subgraph plus a
/// memoized shortest-path engine serving the anchor trees.
///
/// Cached process-wide keyed by `(partition seed, domain count, domain)`
/// and validated against the parent graph's cost epoch — equal epochs
/// guarantee identical graph contents, so the state (and every warm tree
/// in its engine) carries over to the next solve round; a repriced or
/// restructured network rebuilds it. This is what lets domains keep warm
/// trees across rounds instead of running cold Dijkstras per solve.
struct DomainState {
    local: LocalSubgraph,
    engine: PathEngine,
}

fn domain_state(
    graph: &Graph,
    part: &DomainPartition,
    seed: u64,
    k: usize,
    d: usize,
) -> Arc<DomainState> {
    type Cache = Mutex<HashMap<(u64, usize, usize), (u64, Arc<DomainState>)>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let epoch = graph.cost_epoch();
    let key = (seed, k, d);
    if let Some((e, state)) = cache.lock().get(&key) {
        if *e == epoch {
            return Arc::clone(state);
        }
    }
    let state = Arc::new(DomainState {
        local: local_subgraph(graph, part, d),
        engine: PathEngine::new(),
    });
    let mut guard = cache.lock();
    if guard.len() >= 64 {
        guard.clear();
    }
    guard.insert(key, (epoch, Arc::clone(&state)));
    state
}

/// §VI's multi-controller SOFDA behind the [`sof_core::Solver`] trait: a
/// fixed domain count, message accounting discarded (use
/// [`distributed_sofda`] directly when you need it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistributedSofda {
    /// Number of controller domains.
    pub domains: usize,
}

impl Default for DistributedSofda {
    fn default() -> DistributedSofda {
        DistributedSofda { domains: 3 }
    }
}

impl sof_core::Solver for DistributedSofda {
    fn name(&self) -> &'static str {
        "D-SOFDA"
    }

    fn solve(
        &self,
        instance: &SofInstance,
        config: &SofdaConfig,
    ) -> Result<SolveOutcome, SolveError> {
        distributed_sofda(instance, self.domains, config).map(|d| d.outcome)
    }
}

/// Runs SOFDA across `k` controller domains.
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] when `k` is zero or exceeds the node
/// count, and otherwise propagates [`SolveError`] from the underlying
/// stages.
///
/// # Panics
///
/// Panics if a controller thread panics.
pub fn distributed_sofda(
    instance: &SofInstance,
    k: usize,
    config: &SofdaConfig,
) -> Result<DistributedOutcome, SolveError> {
    let n = instance.network.node_count();
    if k == 0 || k > n {
        return Err(SolveError::Infeasible(format!(
            "bad domain count {k} for a {n}-node network"
        )));
    }
    let network = Arc::new(instance.network.clone());
    let part = Arc::new(DomainPartition::new(network.graph(), k, config.seed));
    let msg_count = Arc::new(Mutex::new(0usize));

    // Anchor set per domain: borders + local sources/VMs/destinations.
    let mut anchors_of: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); k];
    for (d, anchors) in anchors_of.iter_mut().enumerate() {
        anchors.extend(part.borders(network.graph(), d));
    }
    let interesting: Vec<NodeId> = instance
        .request
        .sources
        .iter()
        .chain(instance.request.destinations.iter())
        .copied()
        .chain(instance.network.vms())
        .collect();
    for v in interesting {
        anchors_of[part.domain_of[v.index()]].insert(v);
    }

    // Spawn controllers.
    let (to_leader, from_controllers) = unbounded::<(usize, Message)>();
    let mut to_controllers: Vec<Sender<Message>> = Vec::with_capacity(k);
    let mut handles = Vec::with_capacity(k);
    for (d, domain_anchors) in anchors_of.iter().enumerate() {
        let (tx, rx): (Sender<Message>, Receiver<Message>) = unbounded();
        to_controllers.push(tx);
        let state = domain_state(network.graph(), &part, config.seed, k, d);
        let anchors: Vec<NodeId> = domain_anchors.iter().copied().collect();
        let leader = to_leader.clone();
        let msg_count = Arc::clone(&msg_count);
        handles.push(std::thread::spawn(move || {
            // Local subgraph: nodes of this domain only, with its engine
            // serving anchor trees warm across solve rounds.
            let local = &state.local;
            // Anchor-to-anchor distances within the local subgraph.
            let mut entries = Vec::new();
            let mut trees: HashMap<NodeId, Arc<ShortestPaths>> = HashMap::new();
            for &a in &anchors {
                let sp = state.engine.from_source(&local.graph, local.index_of[&a]);
                for &b in &anchors {
                    let dist = sp.dist(local.index_of[&b]);
                    if dist.is_finite() && a != b {
                        entries.push((a, b, dist));
                    }
                }
                trees.insert(a, sp);
            }
            *msg_count.lock() += 1;
            leader
                .send((d, Message::AnchorMatrix { entries }))
                .expect("leader alive");
            // Serve expansion requests until shutdown.
            while let Ok(msg) = rx.recv() {
                match msg {
                    Message::Expand { a, b, reply } => {
                        *msg_count.lock() += 2; // request + response
                        let sp = trees.get(&a).expect("expansion endpoints are anchors");
                        let path = sp
                            .path_to(local.index_of[&b])
                            .expect("anchors connected locally");
                        let real: Vec<NodeId> = path
                            .into_iter()
                            .map(|i| local.original[i.index()])
                            .collect();
                        reply.send(real).expect("leader alive");
                    }
                    Message::Shutdown => break,
                    Message::AnchorMatrix { .. } => {}
                }
            }
        }));
    }

    // Leader: assemble the abstract network.
    let mut abstract_graph = Graph::new();
    let mut abs_of: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let mut real_of: Vec<NodeId> = Vec::new();
    let abs_node = |v: NodeId,
                    abstract_graph: &mut Graph,
                    abs_of: &mut BTreeMap<NodeId, NodeId>,
                    real_of: &mut Vec<NodeId>| {
        *abs_of.entry(v).or_insert_with(|| {
            let id = abstract_graph.add_node();
            real_of.push(v);
            id
        })
    };
    // Distance edges (received matrices), tagged with their owning domain.
    // Matrices arrive in thread-completion order; buffer them and apply in
    // domain order so abstract node ids (and thus the whole solve) are
    // deterministic for a fixed seed.
    let mut matrices: Vec<Vec<(NodeId, NodeId, Cost)>> = vec![Vec::new(); k];
    for _ in 0..k {
        let (d, msg) = from_controllers.recv().expect("controllers report");
        if let Message::AnchorMatrix { entries } = msg {
            matrices[d] = entries;
        }
    }
    let mut intra_edges: HashMap<(NodeId, NodeId), usize> = HashMap::new();
    for (d, entries) in matrices.into_iter().enumerate() {
        for (a, b, dist) in entries {
            let ia = abs_node(a, &mut abstract_graph, &mut abs_of, &mut real_of);
            let ib = abs_node(b, &mut abstract_graph, &mut abs_of, &mut real_of);
            if ia < ib {
                abstract_graph.add_edge(ia, ib, dist);
                intra_edges.insert((ia, ib), d);
            }
        }
    }
    // Physical inter-domain links.
    for (_, e) in network.graph().edges() {
        if part.domain_of[e.u.index()] != part.domain_of[e.v.index()] {
            let ia = abs_node(e.u, &mut abstract_graph, &mut abs_of, &mut real_of);
            let ib = abs_node(e.v, &mut abstract_graph, &mut abs_of, &mut real_of);
            abstract_graph.add_edge(ia, ib, e.cost);
        }
    }
    // Anchors that appeared in no distance entry and no inter-domain link
    // (e.g. the lone anchor of a degenerate single-node domain) still need
    // an abstract image, or role projection below would miss them.
    for anchors in &anchors_of {
        for &v in anchors {
            abs_node(v, &mut abstract_graph, &mut abs_of, &mut real_of);
        }
    }

    // Abstract instance: same roles projected onto abstract ids.
    let mut abs_net = Network::all_switches(abstract_graph);
    for v in instance.network.vms() {
        let a = abs_of[&v];
        abs_net.make_vm(a, instance.network.node_cost(v));
    }
    let abs_request = Request::new(
        instance.request.sources.iter().map(|s| abs_of[s]).collect(),
        instance
            .request
            .destinations
            .iter()
            .map(|d| abs_of[d])
            .collect(),
        instance.request.chain.clone(),
    );
    let abs_instance = SofInstance::new(abs_net, abs_request)
        .map_err(|e| SolveError::Infeasible(format!("abstract instance invalid: {e}")))?;
    let abs_out = sof_core::solve_sofda(&abs_instance, config)?;

    // Expand abstract walks back to real paths via the owning controllers.
    let mut forest_walks = Vec::with_capacity(abs_out.forest.walks.len());
    for w in &abs_out.forest.walks {
        let mut real_nodes: Vec<NodeId> = vec![real_of[w.nodes[0].index()]];
        let mut positions = Vec::with_capacity(w.vnf_positions.len());
        let mut pos_iter = w.vnf_positions.iter().peekable();
        // A VNF placed directly at the walk's first node (source-as-VM).
        while pos_iter.peek() == Some(&&0) {
            positions.push(0);
            pos_iter.next();
        }
        for (hop, pair) in w.nodes.windows(2).enumerate() {
            let (ia, ib) = (pair[0], pair[1]);
            let (a, b) = (real_of[ia.index()], real_of[ib.index()]);
            let key = if ia < ib { (ia, ib) } else { (ib, ia) };
            if let Some(&d) = intra_edges.get(&key) {
                // Ask controller d to expand.
                let (reply_tx, reply_rx) = unbounded();
                to_controllers[d]
                    .send(Message::Expand {
                        a,
                        b,
                        reply: reply_tx,
                    })
                    .expect("controller alive");
                let path = reply_rx.recv().expect("controller replies");
                real_nodes.extend_from_slice(&path[1..]);
            } else {
                // Physical inter-domain link.
                real_nodes.push(b);
            }
            while pos_iter.peek() == Some(&&(hop + 1)) {
                positions.push(real_nodes.len() - 1);
                pos_iter.next();
            }
        }
        forest_walks.push(DestWalk {
            destination: real_of[w.destination.index()],
            source: real_of[w.source.index()],
            nodes: real_nodes,
            vnf_positions: positions,
        });
    }
    for tx in &to_controllers {
        let _ = tx.send(Message::Shutdown);
    }
    for h in handles {
        h.join().expect("controller thread panicked");
    }

    let mut forest = ServiceForest::new(instance.chain_len(), forest_walks);
    if config.shorten {
        forest.shorten(&instance.network);
    }
    forest.validate(instance).map_err(SolveError::Internal)?;
    let cost = forest.cost(&instance.network);
    let messages = *msg_count.lock();
    let mut engine_stats = PathEngineStats::default();
    for d in 0..k {
        let s = domain_state(network.graph(), &part, config.seed, k, d)
            .engine
            .stats();
        engine_stats.hits += s.hits;
        engine_stats.misses += s.misses;
        engine_stats.stale += s.stale;
        engine_stats.evictions += s.evictions;
        engine_stats.repairs += s.repairs;
        engine_stats.partial_repairs += s.partial_repairs;
    }
    Ok(DistributedOutcome {
        outcome: SolveOutcome {
            forest,
            cost,
            stats: abs_out.stats,
        },
        domains: k,
        message_count: messages,
        engine_stats,
    })
}

/// A domain's local subgraph with id mappings.
struct LocalSubgraph {
    graph: Graph,
    index_of: HashMap<NodeId, NodeId>,
    original: Vec<NodeId>,
}

fn local_subgraph(graph: &Graph, part: &DomainPartition, d: usize) -> LocalSubgraph {
    let mut g = Graph::new();
    let mut index_of = HashMap::new();
    let mut original = Vec::new();
    for &v in &part.domains[d] {
        let id = g.add_node();
        index_of.insert(v, id);
        original.push(v);
    }
    for (_, e) in graph.edges() {
        if part.domain_of[e.u.index()] == d && part.domain_of[e.v.index()] == d {
            g.add_edge(index_of[&e.u], index_of[&e.v], e.cost);
        }
    }
    LocalSubgraph {
        graph: g,
        index_of,
        original,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_core::ServiceChain;
    use sof_graph::{generators, CostRange};

    fn instance(seed: u64) -> SofInstance {
        let mut rng = Rng64::seed_from(seed);
        let g = generators::gnp_connected(30, 0.15, CostRange::new(1.0, 7.0), &mut rng);
        let mut net = Network::all_switches(g);
        let picks = rng.sample_indices(30, 16);
        for &v in &picks[..7] {
            net.make_vm(NodeId::new(v), Cost::new(rng.range_f64(0.5, 3.0)));
        }
        SofInstance::new(
            net,
            Request::new(
                picks[7..10].iter().map(|&i| NodeId::new(i)).collect(),
                picks[10..14].iter().map(|&i| NodeId::new(i)).collect(),
                ServiceChain::with_len(2),
            ),
        )
        .unwrap()
    }

    #[test]
    fn partition_covers_all_nodes() {
        let inst = instance(1);
        for k in [1, 2, 3, 5] {
            let part = DomainPartition::new(inst.network.graph(), k, 7);
            let total: usize = part.domains.iter().map(Vec::len).sum();
            assert_eq!(total, 30);
            for d in 0..k {
                for &v in &part.domains[d] {
                    assert_eq!(part.domain_of[v.index()], d);
                }
            }
        }
    }

    #[test]
    fn distributed_matches_centralized_closely() {
        for seed in 0..6 {
            let inst = instance(seed);
            let central = sof_core::solve_sofda(&inst, &SofdaConfig::default()).unwrap();
            let dist = distributed_sofda(&inst, 3, &SofdaConfig::default()).unwrap();
            dist.outcome.forest.validate(&inst).unwrap();
            let (c, d) = (
                central.cost.total().value(),
                dist.outcome.cost.total().value(),
            );
            assert!(
                d <= c * 1.6 + 1e-9 && c <= d * 1.6 + 1e-9,
                "seed {seed}: centralized {c} vs distributed {d}"
            );
            assert!(dist.message_count >= 3, "matrices must be exchanged");
        }
    }

    #[test]
    fn domains_keep_warm_trees_across_rounds() {
        let inst = instance(17);
        let first = distributed_sofda(&inst, 4, &SofdaConfig::default()).unwrap();
        let second = distributed_sofda(&inst, 4, &SofdaConfig::default()).unwrap();
        // Identical network, seed and domain count: round two re-serves
        // every anchor tree from the persistent domain engines.
        assert!(
            second.engine_stats.hits >= first.engine_stats.hits + first.engine_stats.misses,
            "expected warm trees on round two: {:?} then {:?}",
            first.engine_stats,
            second.engine_stats
        );
        assert_eq!(second.engine_stats.misses, first.engine_stats.misses);
        assert_eq!(
            first.outcome.cost.total().value().to_bits(),
            second.outcome.cost.total().value().to_bits()
        );
    }

    #[test]
    fn single_domain_degenerates_gracefully() {
        let inst = instance(11);
        let out = distributed_sofda(&inst, 1, &SofdaConfig::default()).unwrap();
        out.outcome.forest.validate(&inst).unwrap();
    }

    #[test]
    fn many_domains_still_feasible() {
        let inst = instance(13);
        let out = distributed_sofda(&inst, 6, &SofdaConfig::default()).unwrap();
        out.outcome.forest.validate(&inst).unwrap();
        assert_eq!(out.domains, 6);
    }
}

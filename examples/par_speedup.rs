//! Measures the `sof_par` wall-clock speedup on the two heaviest parallel
//! layers — per-seed sweep averaging and the exact solver's forked branch
//! evaluation — and verifies the determinism guarantee on the way: the
//! parallel results must be bit-identical to the 1-thread run.
//!
//! ```sh
//! cargo run --release --example par_speedup            # all cores vs 1 thread
//! SOF_THREADS=4 cargo run --release --example par_speedup
//! ```

use sof::core::{Network, Request, ServiceChain, SofInstance, Sofda, SofdaConfig};
use sof::exact::solve_exact_with;
use sof::graph::{generators, Cost, CostRange, NodeId, Rng64};
use sof::topo::{build_instance, softlayer, ScenarioParams};
use sof_bench::average_with;
use std::time::Instant;

/// A 5-destination instance with scarce VMs on a larger substrate, so the
/// branch-and-bound has real work per child relaxation (chain 3 ⇒ 4 child
/// branches forked per expansion).
fn exact_instance(seed: u64) -> SofInstance {
    let mut rng = Rng64::seed_from(seed);
    let g = generators::gnp_connected(60, 0.08, CostRange::new(1.0, 6.0), &mut rng);
    let mut net = Network::all_switches(g);
    let picks = rng.sample_indices(60, 5 + 2 + 5);
    for &v in &picks[..5] {
        net.make_vm(NodeId::new(v), Cost::new(rng.range_f64(0.5, 4.0)));
    }
    SofInstance::new(
        net,
        Request::new(
            vec![NodeId::new(picks[5]), NodeId::new(picks[6])],
            picks[7..12].iter().map(|&i| NodeId::new(i)).collect(),
            ServiceChain::with_len(3),
        ),
    )
    .unwrap()
}

fn main() {
    let threads = sof::par::current_threads();
    println!("# sof_par speedup ({threads} threads vs 1)\n");

    // Layer 1: per-seed sweep averaging (what every fig binary does).
    let topo = softlayer();
    let make = |seed: u64| {
        let mut p = ScenarioParams::paper_defaults().with_seed(seed);
        p.destinations = 10;
        p.sources = 26;
        build_instance(&topo, &p)
    };
    let sofda = Sofda;
    let time_avg = |t: usize| {
        let t0 = Instant::now();
        let out = average_with(&sofda, 48, 9000, &SofdaConfig::default(), make, t).unwrap();
        (t0.elapsed().as_secs_f64(), out)
    };
    let (serial_s, serial_avg) = time_avg(1);
    let (par_s, par_avg) = time_avg(threads);
    assert_eq!(
        serial_avg.0.to_bits(),
        par_avg.0.to_bits(),
        "averaging diverged across thread counts"
    );
    println!(
        "SOFDA averaging, 48 seeds (SoftLayer, |S|=26, |D|=10): {serial_s:.2} s → {par_s:.2} s \
         ({:.1}×, mean cost {:.1})",
        serial_s / par_s.max(1e-9),
        par_avg.0
    );

    // Layer 2: exact branch-and-bound at 5 destinations.
    let inst = exact_instance(42);
    let time_exact = |t: usize| {
        let t0 = Instant::now();
        let out = solve_exact_with(&inst, 300, t).unwrap();
        (t0.elapsed().as_secs_f64(), out)
    };
    let (serial_s, serial_out) = time_exact(1);
    let (par_s, par_out) = time_exact(threads);
    assert_eq!(
        serial_out.cost.value().to_bits(),
        par_out.cost.value().to_bits(),
        "exact search diverged across thread counts"
    );
    assert_eq!(serial_out.nodes_explored, par_out.nodes_explored);
    println!(
        "solve_exact, 5 destinations, chain 3 ({} B&B nodes, optimal={}): \
         {serial_s:.2} s → {par_s:.2} s ({:.1}×, cost {})",
        par_out.nodes_explored,
        par_out.optimal,
        serial_s / par_s.max(1e-9),
        par_out.cost
    );
}

//! Online deployment (Fig. 12) through the spec layer: one long-lived
//! multicast group churns as viewers come and go, served by the
//! incremental `OnlineSession` engine with the **cost-divergence** rebuild
//! policy — the session re-runs the solver only when the standing
//! forest's congestion-aware cost drifts past `drift ×` the cost measured
//! at the last full solve. A VM failure is injected every 8 arrivals to
//! show re-embedding around faults; every knob below is spec data, so the
//! identical scenario runs from a file via `sof run <spec.toml>`.
//!
//! Run with `cargo run --release --example online_deployment`.

use sof::spec::{run_spec, Detail, RunOptions, ScenarioSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ScenarioSpec::from_toml(
        r#"
name = "online-demo"
label = "Demo"
title = "online deployment"
description = "SoftLayer viewer churn, cost-drift rebuilds, VM failure injection"

[topology]
name = "softlayer"

[online]
drift = 1.8
drift_policy = "cost"

[workload]
kind = "online"
seed = 7
solvers = ["SOFDA"]

[[workload.groups]]
requests = 20
vms_per_dc = 5
churn = { sources = [8, 12], destinations = [13, 17], chain_len = 3, demand_mbps = 5.0, leaves = [1, 3], joins = [1, 3] }

[workload.failures]
every = 8
kind = "vm"
count = 1
"#,
    )?;
    let report = run_spec(&spec, &RunOptions::default())?;
    println!("{}", sof::spec::render_markdown(&report));

    // The structured report exposes what the session engine did.
    for section in &report.sections {
        if let Detail::Online(d) = &section.detail {
            for s in &d.sessions {
                println!(
                    "{}: {} arrivals → {} full solves, {} incremental events \
                     ({} joins, {} leaves), {} injected VM failure(s)",
                    s.label,
                    s.full_solves + s.incremental_events,
                    s.full_solves,
                    s.incremental_events,
                    s.joins,
                    s.leaves,
                    d.vm_failures,
                );
                assert!(
                    s.incremental_events > s.full_solves,
                    "churn should mostly be served incrementally"
                );
            }
        }
    }
    Ok(())
}

//! Quickstart: experiments are **spec files** now. Declare a scenario as
//! data (topology + parameters + solver set + workload), run it through
//! the spec engine, and read the structured report — the same path the
//! `sof` CLI drives (`sof run <spec.toml>`).
//!
//! Run with `cargo run --release --example quickstart`.

use sof::spec::{render_markdown, run_spec, write_jsonl, RunOptions, ScenarioSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A miniature solver comparison on SoftLayer: this spec could equally
    // live in a .toml file and run as `sof run my-spec.toml`.
    let spec = ScenarioSpec::from_toml(
        r#"
name = "quickstart"
label = "Quickstart"
title = "SoftLayer mini comparison"
description = "Four solvers on two small sweep axes"

[topology]
name = "softlayer"

[params]
vm_count = 12
sources = 6
destinations = 4

[workload]
kind = "sweep"
solvers = ["SOFDA", "eNEMP", "eST", "ST"]
seeds = 2
seed = 5

[[workload.axes]]
field = "destinations"
values = [2, 4, 6]

[[workload.axes]]
field = "chain_len"
values = [3, 4]
"#,
    )?;

    // Compile + run on the solver registry; results are deterministic for
    // the spec's seed, whatever the thread count.
    let report = run_spec(&spec, &RunOptions::default())?;

    // 1) Human-readable: the same markdown tables the paper figures use.
    println!("{}", render_markdown(&report));

    // 2) Machine-readable: JSON lines, one record per measured point.
    println!("--- RunReport as JSON lines ---");
    print!("{}", write_jsonl(&report, false));

    // 3) Structured access from code.
    let first = &report.sections[0];
    let table = first.table.as_ref().expect("sweep sections have tables");
    let sofda_at_first_point = table.rows[0].cells[0].value.expect("feasible");
    println!(
        "\nSOFDA cost at {} = {}: {sofda_at_first_point:.1}",
        table.col0, table.rows[0].label
    );

    // The spec itself round-trips losslessly — handy for generating
    // scenario families programmatically and checking them in.
    let reparsed = ScenarioSpec::from_toml(&spec.to_toml())?;
    assert_eq!(reparsed, spec);
    Ok(())
}

//! Online-deployment workload generation (Fig. 12's request streams).

use sof_core::{Request, ServiceChain};
use sof_graph::{NodeId, Rng64};

/// Generator parameters for one network (§VIII-A online setup).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadParams {
    /// Inclusive range of candidate-source counts per request.
    pub sources: (usize, usize),
    /// Inclusive range of destination counts per request.
    pub destinations: (usize, usize),
    /// Demanded chain length (paper: 3).
    pub chain_len: usize,
    /// Per-request demand (Mbps; paper: 5).
    pub demand_mbps: f64,
}

impl WorkloadParams {
    /// The paper's SoftLayer online setup: |D| ∈ [13,17], |S| ∈ [8,12].
    pub fn softlayer() -> WorkloadParams {
        WorkloadParams {
            sources: (8, 12),
            destinations: (13, 17),
            chain_len: 3,
            demand_mbps: 5.0,
        }
    }

    /// The paper's Cogent online setup: |D| ∈ [20,60], |S| ∈ [10,30].
    pub fn cogent() -> WorkloadParams {
        WorkloadParams {
            sources: (10, 30),
            destinations: (20, 60),
            chain_len: 3,
            demand_mbps: 5.0,
        }
    }
}

/// Streams random multicast requests over the access nodes `0..n`.
#[derive(Clone, Debug)]
pub struct RequestStream {
    params: WorkloadParams,
    access_nodes: usize,
    rng: Rng64,
}

impl RequestStream {
    /// Creates a stream over `access_nodes` access nodes.
    pub fn new(params: WorkloadParams, access_nodes: usize, seed: u64) -> RequestStream {
        RequestStream {
            params,
            access_nodes,
            rng: Rng64::seed_from(seed),
        }
    }

    /// Draws the next request. Destinations are drawn first; the source
    /// count is capped by the remaining pool (on SoftLayer the paper's
    /// ranges |S| ≤ 12, |D| ≤ 17 can exceed the 27 access nodes, so the
    /// sets would otherwise overlap).
    pub fn next_request(&mut self) -> Request {
        let d = self
            .rng
            .range(self.params.destinations.0, self.params.destinations.1 + 1)
            .min(self.access_nodes.saturating_sub(1));
        let s = self
            .rng
            .range(self.params.sources.0, self.params.sources.1 + 1)
            .min(self.access_nodes - d);
        assert!(s >= 1, "no room left for sources");
        let picks = self.rng.sample_indices(self.access_nodes, s + d);
        Request::new(
            picks[..s].iter().map(|&i| NodeId::new(i)).collect(),
            picks[s..].iter().map(|&i| NodeId::new(i)).collect(),
            ServiceChain::with_len(self.params.chain_len),
        )
    }

    /// The configured per-request demand.
    pub fn demand(&self) -> f64 {
        self.params.demand_mbps
    }
}

impl Iterator for RequestStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        Some(self.next_request())
    }
}

/// Parameters for a viewer-churn stream: one long-lived multicast group
/// whose destination set mutates between arrivals (sources and chain stay
/// fixed). This is the workload the incremental `OnlineSession` engine is
/// built for — each event is a handful of §VII-C joins/leaves instead of a
/// fresh request.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChurnParams {
    /// Draws the initial request (and fixes demand/chain length).
    pub base: WorkloadParams,
    /// Inclusive range of destinations leaving per event.
    pub leaves: (usize, usize),
    /// Inclusive range of destinations joining per event.
    pub joins: (usize, usize),
}

impl ChurnParams {
    /// SoftLayer churn: the paper's group sizes with 1–3 viewers coming
    /// and going per arrival.
    pub fn softlayer() -> ChurnParams {
        ChurnParams {
            base: WorkloadParams::softlayer(),
            leaves: (1, 3),
            joins: (1, 3),
        }
    }

    /// Cogent churn: larger groups, 2–5 viewers of churn per arrival.
    pub fn cogent() -> ChurnParams {
        ChurnParams {
            base: WorkloadParams::cogent(),
            leaves: (2, 5),
            joins: (2, 5),
        }
    }
}

/// Streams successive snapshots of one multicast group under viewer churn.
///
/// Every [`ChurnStream::next_request`] returns the **full** request (same
/// sources, same chain, mutated destinations), so consumers diff
/// consecutive snapshots — exactly the contract of `OnlineSession::arrive`.
#[derive(Clone, Debug)]
pub struct ChurnStream {
    params: ChurnParams,
    current: Request,
    access_nodes: usize,
    rng: Rng64,
}

impl ChurnStream {
    /// Creates a stream over `access_nodes` access nodes; the initial
    /// group is drawn exactly like [`RequestStream`] would.
    pub fn new(params: ChurnParams, access_nodes: usize, seed: u64) -> ChurnStream {
        let mut base = RequestStream::new(params.base, access_nodes, seed);
        let current = base.next_request();
        ChurnStream {
            params,
            current,
            access_nodes,
            rng: base.rng,
        }
    }

    /// The group snapshot most recently handed out.
    pub fn current(&self) -> &Request {
        &self.current
    }

    /// The configured per-request demand.
    pub fn demand(&self) -> f64 {
        self.params.base.demand_mbps
    }

    /// Applies one churn event and returns the new snapshot: some viewers
    /// leave (never emptying the group), some join from unused access
    /// nodes (never colliding with sources or current viewers).
    pub fn next_request(&mut self) -> Request {
        let mut dests = self.current.destinations.clone();
        let leave = self
            .rng
            .range(self.params.leaves.0, self.params.leaves.1 + 1)
            .min(dests.len().saturating_sub(1));
        for _ in 0..leave {
            let i = self.rng.range(0, dests.len());
            dests.swap_remove(i);
        }
        let free: Vec<NodeId> = (0..self.access_nodes)
            .map(NodeId::new)
            .filter(|n| !dests.contains(n) && !self.current.sources.contains(n))
            .collect();
        let join = self
            .rng
            .range(self.params.joins.0, self.params.joins.1 + 1)
            .min(free.len());
        let picked = self.rng.sample_indices(free.len(), join);
        dests.extend(picked.into_iter().map(|i| free[i]));
        self.current = Request::new(
            self.current.sources.clone(),
            dests,
            self.current.chain.clone(),
        );
        self.current.clone()
    }
}

impl Iterator for ChurnStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        Some(self.next_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_within_ranges() {
        let mut stream = RequestStream::new(WorkloadParams::softlayer(), 27, 1);
        for _ in 0..50 {
            let r = stream.next_request();
            assert!(r.sources.len() <= 12 && r.sources.len() >= 8.min(27 - r.destinations.len()));
            assert!((13..=17).contains(&r.destinations.len()));
            assert_eq!(r.chain.len(), 3);
            // Sources and destinations must be disjoint.
            for s in &r.sources {
                assert!(!r.destinations.contains(s));
            }
        }
    }

    #[test]
    fn churn_keeps_sources_and_mutates_destinations() {
        let mut stream = ChurnStream::new(ChurnParams::softlayer(), 27, 3);
        let initial = stream.current().clone();
        let mut changed = false;
        let mut prev = initial.clone();
        for _ in 0..30 {
            let r = stream.next_request();
            assert_eq!(r.sources, initial.sources, "sources must stay fixed");
            assert_eq!(r.chain.len(), initial.chain.len());
            assert!(!r.destinations.is_empty());
            for d in &r.destinations {
                assert!(!r.sources.contains(d), "viewer on a source node");
            }
            let mut sorted = r.destinations.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), r.destinations.len(), "duplicate viewers");
            changed |= r.destinations != prev.destinations;
            prev = r;
        }
        assert!(changed, "thirty events never churned the group");
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let a: Vec<Request> = ChurnStream::new(ChurnParams::cogent(), 190, 8)
            .take(6)
            .collect();
        let b: Vec<Request> = ChurnStream::new(ChurnParams::cogent(), 190, 8)
            .take(6)
            .collect();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.destinations, y.destinations);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Request> = RequestStream::new(WorkloadParams::softlayer(), 27, 9)
            .take(5)
            .collect();
        let b: Vec<Request> = RequestStream::new(WorkloadParams::softlayer(), 27, 9)
            .take(5)
            .collect();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.sources, y.sources);
            assert_eq!(x.destinations, y.destinations);
        }
    }
}

//! # sof — Service Overlay Forest embedding for software-defined cloud networks
//!
//! A full reproduction of *"Service Overlay Forest Embedding for
//! Software-Defined Cloud Networks"* (ICDCS 2017) as a Rust workspace. This
//! facade crate re-exports the member crates:
//!
//! * [`graph`] — weighted-graph substrate (Dijkstra, MST, metric closure,
//!   deterministic topology generators, seedable RNG),
//! * [`steiner`] — Steiner tree portfolio (Mehlhorn/KMB/Takahashi 2-approx,
//!   exact Dreyfus–Wagner),
//! * [`kstroll`] — k-stroll solvers (exact, color coding, greedy),
//! * [`core`] — the SOF problem model, SOFDA / SOFDA-SS approximation
//!   algorithms, VNF conflict resolution, cost model, dynamic operations,
//! * [`par`] — deterministic scoped worker pool (`par_map_indexed`,
//!   `SOF_THREADS`) behind the parallel sweeps, `core::SessionPool`, and
//!   the exact solver's branch forking,
//! * [`baselines`] — the paper's comparison algorithms (ST, eST, eNEMP),
//! * [`exact`] — the optimal "CPLEX-column" solver and the IP formulation,
//! * [`solvers`] — the registry of every algorithm behind the object-safe
//!   [`core::Solver`] trait (`solvers::all()`, `solvers::by_name`),
//! * [`topo`] — SoftLayer / Cogent / Inet / testbed topologies and the
//!   named-topology registry specs resolve through,
//! * [`sim`] — flow-level DES with max-min fairness, video QoE, and the
//!   online request / viewer-churn workloads,
//! * [`runner`] — streaming churn-at-scale simulation: a [`runner::Runner`]
//!   drives a `core::SessionPool` over lazily generated event timelines
//!   (10k+ groups, millions of events) with pluggable stop wards and
//!   incremental record sinks, in memory bounded by the live pool,
//! * [`survive`] — the survivability subsystem: deterministic link/node/
//!   VM/domain failure processes with repair times, protection policies
//!   (reactive / backup paths / standby forest) over `core::OnlineSession`,
//!   and recovery/availability metrics,
//! * [`sdn`] — flow-rule compilation and distributed multi-controller SOFDA,
//! * [`daemon`] — `sofd`, the long-running embedding service: a
//!   dependency-free HTTP/1.1 control plane (`sof serve`) over
//!   [`core::OnlineSession`] with TTL'd sessions, a janitor thread, and
//!   `/v1/stats` observability,
//! * [`spec`] — the declarative [`spec::ScenarioSpec`] layer: experiments
//!   as TOML/JSON files, compiled onto the machinery above, reported as
//!   structured [`spec::RunReport`] JSON lines (the `sof` CLI front end).
//!
//! # Quick start
//!
//! Experiments are **spec files**. The paper's whole evaluation ships as
//! bundled presets, and new scenarios are data, not code:
//!
//! ```text
//! sof list                 # bundled presets (fig7…table2 + demos)
//! sof run fig8             # structured RunReport JSON lines on stdout
//! sof run fig8 --format markdown --seeds 1 --limit 2
//! sof validate my-spec.toml
//! ```
//!
//! The same layer is a library:
//!
//! ```
//! use sof::spec::{run_spec, RunOptions, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_toml(r#"
//! name = "tiny"
//!
//! [workload]
//! kind = "sweep"
//! solvers = ["SOFDA", "eST"]
//! seeds = 1
//! seed = 7
//!
//! [[workload.axes]]
//! field = "destinations"
//! values = [2, 4]
//! "#)?;
//! let report = run_spec(&spec, &RunOptions::default())?;
//! println!("{}", sof::spec::write_jsonl(&report, false));
//! # Ok::<(), sof::spec::SpecError>(())
//! ```
//!
//! Below the spec layer, solvers remain directly drivable:
//!
//! ```
//! use sof::core::SofdaConfig;
//! use sof::topo::{build_instance, softlayer, ScenarioParams};
//!
//! let inst = build_instance(&softlayer(), &ScenarioParams::paper_defaults());
//! for solver in sof::solvers::comparison_set(false) {
//!     let out = solver.solve(&inst, &SofdaConfig::default())?;
//!     out.forest.validate(&inst)?;
//!     println!("{:>5}: {}", solver.name(), out.cost);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Online embedding
//!
//! For arrival/departure workloads, drive any registered solver through the
//! incremental [`core::OnlineSession`] engine instead of re-solving from
//! scratch:
//!
//! ```
//! use sof::core::{OnlineConfig, OnlineSession, SofdaConfig};
//! use sof::sim::{ChurnParams, ChurnStream};
//! use sof::topo::{build_instance, softlayer, ScenarioParams};
//!
//! let topo = softlayer();
//! let mut p = ScenarioParams::paper_defaults().with_seed(7);
//! p.destinations = 4;
//! let inst = build_instance(&topo, &p);
//! let mut session = OnlineSession::new(
//!     inst,
//!     sof::solvers::by_name("SOFDA").expect("registered"),
//!     SofdaConfig::default(),
//!     OnlineConfig::default(),
//! );
//! let mut churn = ChurnStream::new(ChurnParams::softlayer(), 27, 7);
//! let first = session.arrive(churn.current().clone())?;
//! assert!(first.rebuilt); // initial embed runs the solver…
//! let next = session.arrive(churn.next_request())?;
//! // …after which viewer churn is handled by §VII-C join/leave dynamics.
//! println!("rebuilt: {}, joined {}, left {}", next.rebuilt, next.joined, next.left);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sof_baselines as baselines;
pub use sof_core as core;
pub use sof_daemon as daemon;
pub use sof_exact as exact;
pub use sof_graph as graph;
pub use sof_kstroll as kstroll;
pub use sof_par as par;
pub use sof_runner as runner;
pub use sof_sdn as sdn;
pub use sof_sim as sim;
pub use sof_solvers as solvers;
pub use sof_spec as spec;
pub use sof_steiner as steiner;
pub use sof_survive as survive;
pub use sof_topo as topo;

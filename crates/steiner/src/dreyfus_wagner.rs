//! Exact Steiner trees via the Dreyfus–Wagner dynamic program.
//!
//! Exponential in the number of terminals (`O(3^k·n + 2^k·m log n)`), so it
//! is reserved for small terminal sets — exactly the regime of the paper's
//! CPLEX comparison. Used as the ground truth in approximation-ratio tests
//! and optionally inside SOFDA for small instances.

use crate::tree::{check_terminals, SteinerError, SteinerTree};
use sof_graph::{Cost, EdgeId, Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Hard cap on distinct terminals accepted by [`dreyfus_wagner`].
pub const MAX_DW_TERMINALS: usize = 16;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Choice {
    /// This node is the terminal that seeds the singleton subset.
    Root,
    /// Reached by relaxing from a neighbor.
    Hop(NodeId, EdgeId),
    /// Two sub-solutions merged at this node (stores one half's mask).
    Merge(u32),
    /// Not yet computed / unreachable.
    None,
}

/// Computes a **minimum-cost** Steiner tree spanning `terminals`.
///
/// # Errors
///
/// Returns [`SteinerError::InvalidTerminal`] for out-of-range ids and
/// [`SteinerError::Unreachable`] when no spanning tree exists.
///
/// # Panics
///
/// Panics if there are more than [`MAX_DW_TERMINALS`] distinct terminals.
///
/// # Examples
///
/// ```
/// use sof_graph::{Graph, Cost, NodeId};
/// use sof_steiner::dreyfus_wagner;
///
/// // Square 0-1-2-3 with unit edges and a diagonal hub 4.
/// let mut g = Graph::with_nodes(5);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(2.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
/// g.add_edge(NodeId::new(2), NodeId::new(3), Cost::new(2.0));
/// g.add_edge(NodeId::new(3), NodeId::new(0), Cost::new(2.0));
/// for i in 0..4 {
///     g.add_edge(NodeId::new(i), NodeId::new(4), Cost::new(1.1));
/// }
/// let ts: Vec<NodeId> = (0..4).map(NodeId::new).collect();
/// let tree = dreyfus_wagner(&g, &ts)?;
/// assert_eq!(tree.cost, Cost::new(4.4)); // star through the hub
/// # Ok::<(), sof_steiner::SteinerError>(())
/// ```
pub fn dreyfus_wagner(graph: &Graph, terminals: &[NodeId]) -> Result<SteinerTree, SteinerError> {
    check_terminals(graph, terminals)?;
    let mut ts: Vec<NodeId> = terminals.to_vec();
    ts.sort();
    ts.dedup();
    if ts.len() <= 1 {
        return Ok(SteinerTree::default());
    }
    assert!(
        ts.len() <= MAX_DW_TERMINALS,
        "Dreyfus-Wagner limited to {MAX_DW_TERMINALS} terminals, got {}",
        ts.len()
    );
    let n = graph.node_count();
    let root = ts[ts.len() - 1];
    let q = &ts[..ts.len() - 1]; // base terminals, one bit each
    let full: u32 = (1u32 << q.len()) - 1;

    // dp[mask][v], choice[mask][v]
    let masks = 1usize << q.len();
    let mut dp = vec![vec![Cost::INFINITY; n]; masks];
    let mut choice = vec![vec![Choice::None; n]; masks];

    // Dijkstra relaxation: takes initial labels, relaxes over the graph.
    let relax = |dist: &mut Vec<Cost>, ch: &mut Vec<Choice>| {
        let mut heap: BinaryHeap<Reverse<(Cost, NodeId)>> = dist
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(i, &d)| Reverse((d, NodeId::new(i))))
            .collect();
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u.index()] {
                continue;
            }
            for (v, e) in graph.neighbors(u) {
                let nd = d + graph.edge_cost(e);
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    ch[v.index()] = Choice::Hop(u, e);
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    };

    // Singletons.
    for (i, &t) in q.iter().enumerate() {
        let mask = 1usize << i;
        dp[mask][t.index()] = Cost::ZERO;
        choice[mask][t.index()] = Choice::Root;
        let (d, c) = (&mut dp[mask], &mut choice[mask]);
        relax(d, c);
    }

    // Increasing subset size.
    for mask in 1..masks {
        if mask.count_ones() < 2 {
            continue;
        }
        // Merge step: combine complementary sub-solutions at each node.
        let mut merged = vec![Cost::INFINITY; n];
        let mut mch = vec![Choice::None; n];
        let m32 = mask as u32;
        // Iterate proper non-empty submasks; visit each split once.
        let mut sub = (mask - 1) & mask;
        while sub > 0 {
            let other = mask & !sub;
            if sub < other {
                sub = (sub - 1) & mask;
                continue;
            }
            for v in 0..n {
                let a = dp[sub][v];
                let b = dp[other][v];
                if a.is_finite() && b.is_finite() {
                    let c = a + b;
                    if c < merged[v] {
                        merged[v] = c;
                        mch[v] = Choice::Merge(sub as u32);
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
        debug_assert!(m32 <= full);
        dp[mask] = merged;
        choice[mask] = mch;
        let (d, c) = (&mut dp[mask], &mut choice[mask]);
        relax(d, c);
    }

    let best = dp[full as usize][root.index()];
    if !best.is_finite() {
        return Err(SteinerError::Unreachable { terminal: root });
    }

    // Reconstruction.
    let mut edges: Vec<EdgeId> = Vec::new();
    let mut stack: Vec<(usize, NodeId)> = vec![(full as usize, root)];
    while let Some((mask, v)) = stack.pop() {
        match choice[mask][v.index()] {
            Choice::Root => {}
            Choice::Hop(u, e) => {
                edges.push(e);
                stack.push((mask, u));
            }
            Choice::Merge(sub) => {
                let other = mask & !(sub as usize);
                stack.push((sub as usize, v));
                stack.push((other, v));
            }
            Choice::None => unreachable!("finite dp entry must have a choice"),
        }
    }
    edges.sort();
    edges.dedup();
    let tree = SteinerTree::from_edges(graph, edges);
    debug_assert!(
        tree.cost.approx_eq(best) || tree.cost < best,
        "reconstructed cost {} exceeds dp value {}",
        tree.cost,
        best
    );
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kmb, mehlhorn, takahashi_matsuyama};
    use sof_graph::{generators, CostRange, Rng64};

    #[test]
    fn exact_beats_or_matches_heuristics_on_random_graphs() {
        let mut rng = Rng64::seed_from(21);
        for trial in 0..20 {
            let g = generators::gnp_connected(16, 0.25, CostRange::new(1.0, 10.0), &mut rng);
            let k = 2 + (trial % 5);
            let ts: Vec<NodeId> = rng
                .sample_indices(g.node_count(), k)
                .into_iter()
                .map(NodeId::new)
                .collect();
            let exact = dreyfus_wagner(&g, &ts).unwrap();
            exact.validate(&g, &ts).unwrap();
            for (name, tree) in [
                ("mehlhorn", mehlhorn(&g, &ts).unwrap()),
                ("kmb", kmb(&g, &ts).unwrap()),
                ("tm", takahashi_matsuyama(&g, &ts).unwrap()),
            ] {
                tree.validate(&g, &ts).unwrap();
                assert!(
                    exact.cost <= tree.cost + Cost::new(1e-9),
                    "{name} beat exact on trial {trial}: {} < {}",
                    tree.cost,
                    exact.cost
                );
                assert!(
                    tree.cost <= exact.cost * 2.0 + Cost::new(1e-9),
                    "{name} violated 2-approx on trial {trial}"
                );
            }
        }
    }

    #[test]
    fn classic_steiner_point_example() {
        // Triangle of terminals with a cheap center (Fermat point analogue).
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(2.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
        g.add_edge(NodeId::new(2), NodeId::new(0), Cost::new(2.0));
        for i in 0..3 {
            g.add_edge(NodeId::new(i), NodeId::new(3), Cost::new(1.2));
        }
        let ts = vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let tree = dreyfus_wagner(&g, &ts).unwrap();
        assert_eq!(tree.cost, Cost::new(3.5999999999999996));
        assert_eq!(tree.edges.len(), 3);
    }

    #[test]
    fn two_terminals_is_shortest_path() {
        let mut rng = Rng64::seed_from(5);
        let g = generators::gnp_connected(20, 0.2, CostRange::new(1.0, 4.0), &mut rng);
        let sp = sof_graph::ShortestPaths::from_source(&g, NodeId::new(0));
        let tree = dreyfus_wagner(&g, &[NodeId::new(0), NodeId::new(15)]).unwrap();
        assert!(tree.cost.approx_eq(sp.dist(NodeId::new(15))));
    }

    #[test]
    fn unreachable_errors() {
        let g = Graph::with_nodes(2);
        let err = dreyfus_wagner(&g, &[NodeId::new(0), NodeId::new(1)]).unwrap_err();
        assert!(matches!(err, SteinerError::Unreachable { .. }));
    }
}

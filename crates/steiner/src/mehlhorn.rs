//! Mehlhorn's 2-approximation for the Steiner tree problem.
//!
//! One multi-source Dijkstra computes a Voronoi partition around the
//! terminals; candidate terminal-to-terminal connections are derived from
//! boundary edges; an MST over those candidates is expanded back into real
//! paths and pruned. Runs in `O(m log n)` — the workhorse used inside SOFDA
//! on the large topologies. Approximation factor 2·(1 − 1/ℓ) ≤ 2.

use crate::tree::{check_terminals, mst_and_prune, SteinerError, SteinerTree};
use sof_graph::{Cost, EdgeId, Graph, NodeId, PathEngine, ShortestPaths, UnionFind};
use std::collections::HashMap;

/// Computes a Steiner tree spanning `terminals` with Mehlhorn's algorithm.
///
/// # Errors
///
/// Returns [`SteinerError::InvalidTerminal`] for out-of-range ids and
/// [`SteinerError::Unreachable`] if the terminals span multiple components.
///
/// # Examples
///
/// ```
/// use sof_graph::{Graph, Cost, NodeId};
/// use sof_steiner::mehlhorn;
///
/// let mut g = Graph::with_nodes(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(3), Cost::new(1.0));
/// let tree = mehlhorn(&g, &[NodeId::new(0), NodeId::new(2), NodeId::new(3)])?;
/// assert_eq!(tree.cost, Cost::new(3.0));
/// # Ok::<(), sof_steiner::SteinerError>(())
/// ```
pub fn mehlhorn(graph: &Graph, terminals: &[NodeId]) -> Result<SteinerTree, SteinerError> {
    mehlhorn_impl(graph, terminals, None)
}

/// [`mehlhorn`] with its single multi-source Dijkstra served by a
/// [`PathEngine`]: repeated solves over the same terminal set and cost
/// epoch reuse the cached Voronoi tree. Bit-identical to [`mehlhorn`].
///
/// # Errors
///
/// Same contract as [`mehlhorn`].
pub fn mehlhorn_with_engine(
    graph: &Graph,
    terminals: &[NodeId],
    engine: &PathEngine,
) -> Result<SteinerTree, SteinerError> {
    mehlhorn_impl(graph, terminals, Some(engine))
}

fn mehlhorn_impl(
    graph: &Graph,
    terminals: &[NodeId],
    engine: Option<&PathEngine>,
) -> Result<SteinerTree, SteinerError> {
    check_terminals(graph, terminals)?;
    let mut distinct: Vec<NodeId> = terminals.to_vec();
    distinct.sort();
    distinct.dedup();
    if distinct.len() <= 1 {
        return Ok(SteinerTree::default());
    }
    let cached;
    let owned;
    let sp: &ShortestPaths = match engine {
        Some(engine) => {
            cached = engine.from_sources(graph, &distinct);
            &cached
        }
        None => {
            owned = ShortestPaths::from_sources(graph, distinct.iter().copied());
            &owned
        }
    };
    for &t in &distinct {
        // All terminals are sources, so unreachability shows up when some
        // terminal's component has no other terminal; checked below via MST.
        debug_assert_eq!(sp.dist(t), Cost::ZERO);
    }

    // Candidate inter-terminal connections from Voronoi boundary edges.
    // Key: (site_a, site_b) with site_a < site_b.
    let mut best: HashMap<(NodeId, NodeId), (Cost, EdgeId)> = HashMap::new();
    for (eid, edge) in graph.edges() {
        let (Some(su), Some(sv)) = (sp.site(edge.u), sp.site(edge.v)) else {
            continue;
        };
        if su == sv {
            continue;
        }
        let key = if su < sv { (su, sv) } else { (sv, su) };
        let w = sp.dist(edge.u) + edge.cost + sp.dist(edge.v);
        match best.get(&key) {
            Some(&(bw, _)) if bw <= w => {}
            _ => {
                best.insert(key, (w, eid));
            }
        }
    }

    // MST over the terminal graph (Kruskal on candidate entries).
    let mut cands: Vec<(Cost, NodeId, NodeId, EdgeId)> = best
        .into_iter()
        .map(|((a, b), (w, e))| (w, a, b, e))
        .collect();
    cands.sort_by_key(|&(w, a, b, _)| (w, a, b));
    let mut idx: HashMap<NodeId, usize> = HashMap::new();
    for (i, &t) in distinct.iter().enumerate() {
        idx.insert(t, i);
    }
    let mut uf = UnionFind::new(distinct.len());
    let mut real_edges: Vec<EdgeId> = Vec::new();
    let mut joined = 0usize;
    for (_, a, b, boundary) in cands {
        if uf.union(idx[&a], idx[&b]) {
            joined += 1;
            // Expand: path(site(u) -> u) + (u,v) + path(v -> site(v)).
            let edge = graph.edge(boundary);
            real_edges.push(boundary);
            for end in [edge.u, edge.v] {
                let mut cur = end;
                while let Some((p, e)) = sp.parent(cur) {
                    real_edges.push(e);
                    cur = p;
                }
            }
        }
    }
    if joined + 1 != distinct.len() {
        // Some terminal could not be connected.
        let root = uf.find(0);
        let t = distinct
            .iter()
            .find(|t| uf.find(idx[t]) != root)
            .copied()
            .unwrap_or(distinct[0]);
        return Err(SteinerError::Unreachable { terminal: t });
    }
    let kept = mst_and_prune(graph, real_edges, &distinct);
    Ok(SteinerTree::from_edges(graph, kept))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_with_detour() -> (Graph, Vec<NodeId>) {
        // Terminals 0,2,4 around hub 1; expensive direct edges 0-2, 2-4.
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(2), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(4), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(0), NodeId::new(2), Cost::new(3.5));
        g.add_edge(NodeId::new(2), NodeId::new(4), Cost::new(3.5));
        (g, vec![NodeId::new(0), NodeId::new(2), NodeId::new(4)])
    }

    #[test]
    fn finds_hub_tree() {
        let (g, ts) = star_with_detour();
        let tree = mehlhorn(&g, &ts).unwrap();
        tree.validate(&g, &ts).unwrap();
        assert_eq!(tree.cost, Cost::new(3.0));
    }

    #[test]
    fn two_terminals_is_shortest_path() {
        let (g, _) = star_with_detour();
        let tree = mehlhorn(&g, &[NodeId::new(0), NodeId::new(4)]).unwrap();
        assert_eq!(tree.cost, Cost::new(2.0));
    }

    #[test]
    fn single_terminal_empty() {
        let (g, _) = star_with_detour();
        let tree = mehlhorn(&g, &[NodeId::new(3)]).unwrap();
        assert!(tree.edges.is_empty());
    }

    #[test]
    fn unreachable_terminal_errors() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        let err = mehlhorn(&g, &[NodeId::new(0), NodeId::new(2)]).unwrap_err();
        assert!(matches!(err, SteinerError::Unreachable { .. }));
    }

    #[test]
    fn invalid_terminal_errors() {
        let g = Graph::with_nodes(2);
        let err = mehlhorn(&g, &[NodeId::new(5)]).unwrap_err();
        assert!(matches!(err, SteinerError::InvalidTerminal { .. }));
    }

    #[test]
    fn duplicate_terminals_ok() {
        let (g, _) = star_with_detour();
        let tree = mehlhorn(&g, &[NodeId::new(0), NodeId::new(0), NodeId::new(2)]).unwrap();
        assert_eq!(tree.cost, Cost::new(2.0));
    }
}

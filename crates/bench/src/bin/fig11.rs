//! Fig. 11: impact of the VM setup-cost multiple (cost and used VMs).
use sof_bench::{average, print_header, print_row, Algo, Args};
use sof_core::SofdaConfig;
use sof_topo::{build_instance, softlayer, ScenarioParams};

fn main() {
    let args = Args::capture();
    let seeds: u64 = args.seeds(5);
    let base: u64 = args.get("seed", 4000);
    let topo = softlayer();
    println!("# Fig. 11 — setup-cost multiple × chain length (SOFDA, SoftLayer, seeds = {seeds})");
    for metric in ["cost", "used VMs"] {
        println!("\n## Fig. 11 — {metric}\n");
        let mut hdr = vec!["multiple".to_string()];
        hdr.extend((3..=7).map(|c| format!("|C|={c}")));
        let hdr_ref: Vec<&str> = hdr.iter().map(String::as_str).collect();
        print_header(&hdr_ref);
        for mult in [1.0, 3.0, 5.0, 7.0, 9.0] {
            let mut cells = vec![format!("{mult:.0}x")];
            for chain in 3..=7usize {
                let make = |seed: u64| {
                    let mut p = ScenarioParams::paper_defaults().with_seed(seed);
                    p.chain_len = chain;
                    p.setup_scale = mult;
                    build_instance(&topo, &p)
                };
                let (c, vms, _) = average(Algo::Sofda, seeds, base, &SofdaConfig::default(), make)
                    .expect("feasible");
                cells.push(if metric == "cost" {
                    format!("{c:.1}")
                } else {
                    format!("{vms:.2}")
                });
            }
            print_row(&cells);
        }
    }
}

//! Graph substrate for the Service Overlay Forest (SOF) workspace.
//!
//! This crate provides everything the SOF algorithms need from a graph
//! library, implemented from scratch:
//!
//! * [`Graph`] — undirected weighted adjacency-list graph with typed
//!   [`NodeId`] / [`EdgeId`] handles and non-NaN [`Cost`] weights,
//! * [`ShortestPaths`] — single- and multi-source Dijkstra with path
//!   reconstruction and Voronoi sites (for Mehlhorn's Steiner algorithm),
//! * [`DijkstraWorkspace`] — a reusable, epoch-stamped Dijkstra scratchpad:
//!   O(1) reset between runs, zero O(n) allocation once warm,
//! * [`PathEngine`] — a memoizing shortest-path service keyed by
//!   `(source set, cost epoch)`; hands out shared `Arc<ShortestPaths>`
//!   trees with *edge-scoped* invalidation: a cost change dirties only the
//!   mutated edges ([`Graph::cost_changes_since`]), and cached trees those
//!   edges cannot affect are revalidated instead of recomputed (see the
//!   module docs for the exact safety rule),
//! * [`MetricClosure`] — pairwise terminal distances with realizing paths,
//!   optionally engine-backed ([`MetricClosure::with_engine`]),
//! * [`minimum_spanning_forest`] — Kruskal MST over a [`UnionFind`],
//! * [`generators`] — deterministic connected random topologies (Erdős–Rényi,
//!   ring, grid, Waxman, Inet-style power law),
//! * [`Rng64`] — a seedable xoshiro256** generator so every experiment in the
//!   workspace reproduces bit-for-bit.
//!
//! # Examples
//!
//! Build a small network and query a shortest path:
//!
//! ```
//! use sof_graph::{Graph, Cost, NodeId, ShortestPaths};
//!
//! let mut g = Graph::with_nodes(4);
//! g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
//! g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
//! g.add_edge(NodeId::new(0), NodeId::new(3), Cost::new(10.0));
//! g.add_edge(NodeId::new(3), NodeId::new(2), Cost::new(1.0));
//!
//! let sp = ShortestPaths::from_source(&g, NodeId::new(0));
//! assert_eq!(sp.dist(NodeId::new(2)), Cost::new(2.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod dijkstra;
mod engine;
pub mod generators;
mod graph;
mod ids;
mod metric;
mod mst;
mod rng;
mod unionfind;

pub use cost::Cost;
pub use dijkstra::{DijkstraWorkspace, ShortestPaths};
pub use engine::{PathEngine, PathEngineStats};
pub use generators::CostRange;
pub use graph::{CostChange, Edge, Graph};
pub use ids::{EdgeId, NodeId};
pub use metric::MetricClosure;
pub use mst::{edge_set_cost, minimum_spanning_forest};
pub use rng::Rng64;
pub use unionfind::UnionFind;

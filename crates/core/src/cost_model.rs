//! The convex load-dependent cost model of §VII-B (Fortz–Thorup [46]) and
//! the online load tracker driving Fig. 12.

use crate::{Network, ServiceForest};
use serde::{Deserialize, Serialize};
use sof_graph::{Cost, EdgeId, NodeId};

/// Piecewise-linear convex cost of carrying load `l` on a resource of
/// capacity `p` (Fig. 7 of the paper).
///
/// The function grows steeply as utilization approaches and exceeds 1,
/// steering SOFDA away from congested links and overloaded hosts.
///
/// # Panics
///
/// Panics if `capacity <= 0` or `load < 0`.
///
/// # Examples
///
/// ```
/// use sof_core::fortz_thorup;
/// // At utilization 1.0 with unit capacity the cost is 70 - 178/3 ≈ 10.67.
/// let c = fortz_thorup(1.0, 1.0);
/// assert!((c.value() - (70.0 - 178.0 / 3.0)).abs() < 1e-9);
/// ```
pub fn fortz_thorup(load: f64, capacity: f64) -> Cost {
    assert!(capacity > 0.0, "capacity must be positive");
    assert!(load >= 0.0, "load must be non-negative");
    let (l, p) = (load, capacity);
    let u = l / p;
    let v = if u <= 1.0 / 3.0 {
        l
    } else if u <= 2.0 / 3.0 {
        3.0 * l - (2.0 / 3.0) * p
    } else if u <= 9.0 / 10.0 {
        10.0 * l - (16.0 / 3.0) * p
    } else if u <= 1.0 {
        70.0 * l - (178.0 / 3.0) * p
    } else if u <= 11.0 / 10.0 {
        500.0 * l - (1468.0 / 3.0) * p
    } else {
        // The paper prints 14318/3 here, which would make the function
        // discontinuous at utilization 11/10; the original Fortz–Thorup
        // constant is 16318/3 (continuity: 500·1.1 − 1468/3 = 5000·1.1 −
        // 16318/3). We use the correct constant.
        5000.0 * l - (16318.0 / 3.0) * p
    };
    Cost::new(v.max(0.0))
}

/// Tracks per-link and per-VM load and refreshes the network's costs with
/// [`fortz_thorup`], implementing the online deployment model (§VII-B):
/// each accepted request adds its demand to every link its forest uses
/// (once per chain segment, mirroring the bandwidth actually consumed) and
/// one unit of work to every enabled VM.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadTracker {
    edge_load: Vec<f64>,
    edge_capacity: Vec<f64>,
    node_load: Vec<f64>,
    node_capacity: Vec<f64>,
    /// Multiplier translating convex link cost into the network's cost
    /// units.
    pub edge_cost_scale: f64,
    /// Multiplier for VM setup costs.
    pub node_cost_scale: f64,
}

impl LoadTracker {
    /// Creates a tracker with uniform capacities.
    pub fn new(network: &Network, link_capacity: f64, vm_capacity: f64) -> LoadTracker {
        LoadTracker {
            edge_load: vec![0.0; network.graph().edge_count()],
            edge_capacity: vec![link_capacity; network.graph().edge_count()],
            node_load: vec![0.0; network.node_count()],
            node_capacity: vec![vm_capacity; network.node_count()],
            edge_cost_scale: 1.0,
            node_cost_scale: 1.0,
        }
    }

    /// Sets an individual link's capacity.
    pub fn set_edge_capacity(&mut self, e: EdgeId, capacity: f64) {
        self.edge_capacity[e.index()] = capacity;
    }

    /// Current load of a link.
    pub fn edge_load(&self, e: EdgeId) -> f64 {
        self.edge_load[e.index()]
    }

    /// Capacity of a link.
    pub fn edge_capacity(&self, e: EdgeId) -> f64 {
        self.edge_capacity[e.index()]
    }

    /// Capacity of a node.
    pub fn node_capacity(&self, v: NodeId) -> f64 {
        self.node_capacity[v.index()]
    }

    /// Current utilization of a link.
    pub fn edge_utilization(&self, e: EdgeId) -> f64 {
        self.edge_load[e.index()] / self.edge_capacity[e.index()]
    }

    /// Current load of a node.
    pub fn node_load(&self, v: NodeId) -> f64 {
        self.node_load[v.index()]
    }

    /// Seeds initial random-ish loads (the one-time deployment scenario
    /// draws link usage uniformly from `(0, 1)`).
    pub fn seed_edge_loads<F>(&mut self, mut f: F)
    where
        F: FnMut(EdgeId) -> f64,
    {
        for i in 0..self.edge_load.len() {
            self.edge_load[i] = f(EdgeId::new(i)) * self.edge_capacity[i];
        }
    }

    /// Zeroes every link and node load (capacities are kept). The online
    /// engine re-derives a standing forest's footprint from scratch each
    /// round instead of accumulating deltas.
    pub fn clear_loads(&mut self) {
        self.edge_load.iter_mut().for_each(|l| *l = 0.0);
        self.node_load.iter_mut().for_each(|l| *l = 0.0);
    }

    /// Adds a deployed forest's demand: `demand` per link per used segment,
    /// one unit per enabled VM.
    pub fn apply_forest(&mut self, network: &Network, forest: &ServiceForest, demand: f64) {
        for seg in forest.segment_edges() {
            for (a, b) in seg {
                let e = network
                    .graph()
                    .edge_between(a, b)
                    .expect("forest uses network links");
                self.edge_load[e.index()] += demand;
            }
        }
        for (vm, _) in forest.enabled_vms().expect("validated forest") {
            self.node_load[vm.index()] += 1.0;
        }
    }

    /// Recomputes every link and VM cost from current loads.
    pub fn refresh_costs(&self, network: &mut Network) {
        for i in 0..self.edge_load.len() {
            let c = fortz_thorup(self.edge_load[i], self.edge_capacity[i]);
            network
                .graph_mut()
                .set_edge_cost(EdgeId::new(i), c * self.edge_cost_scale);
        }
        for v in network.vms() {
            let c = fortz_thorup(self.node_load[v.index()], self.node_capacity[v.index()]);
            network.set_node_cost(v, c * self.node_cost_scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DestWalk, Request, ServiceChain, SofInstance};
    use sof_graph::Graph;

    #[test]
    fn piecewise_values_match_fig7() {
        // p = 1: spot checks along Fig. 7's curve.
        assert_eq!(fortz_thorup(0.2, 1.0), Cost::new(0.2));
        assert!((fortz_thorup(0.5, 1.0).value() - (1.5 - 2.0 / 3.0)).abs() < 1e-12);
        assert!((fortz_thorup(0.8, 1.0).value() - (8.0 - 16.0 / 3.0)).abs() < 1e-12);
        assert!((fortz_thorup(1.0, 1.0).value() - (70.0 - 178.0 / 3.0)).abs() < 1e-12);
        assert!((fortz_thorup(1.05, 1.0).value() - (525.0 - 1468.0 / 3.0)).abs() < 1e-12);
        assert!(fortz_thorup(1.2, 1.0).value() > 500.0);
    }

    #[test]
    fn continuous_at_breakpoints() {
        for p in [1.0, 10.0, 100.0] {
            for bp in [1.0 / 3.0, 2.0 / 3.0, 0.9, 1.0, 1.1] {
                let lo = fortz_thorup((bp - 1e-9) * p, p).value();
                let hi = fortz_thorup((bp + 1e-9) * p, p).value();
                assert!(
                    (hi - lo).abs() < 1e-4 * p,
                    "discontinuity at {bp} (p={p}): {lo} vs {hi}"
                );
            }
        }
    }

    #[test]
    fn convex_increasing() {
        let mut prev = -1.0;
        let mut prev_slope = 0.0;
        for i in 0..130 {
            let l = i as f64 / 100.0;
            let c = fortz_thorup(l, 1.0).value();
            assert!(c >= prev, "not increasing at {l}");
            if i > 0 {
                let slope = c - prev;
                assert!(slope >= prev_slope - 1e-9, "not convex at {l}");
                prev_slope = slope;
            }
            prev = c;
        }
    }

    #[test]
    fn tracker_accumulates_and_refreshes() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
        let mut net = crate::Network::all_switches(g);
        net.make_vm(NodeId::new(1), Cost::new(1.0));
        let inst = SofInstance::new(
            net.clone(),
            Request::new(
                vec![NodeId::new(0)],
                vec![NodeId::new(2)],
                ServiceChain::with_len(1),
            ),
        )
        .unwrap();
        let forest = ServiceForest::new(
            1,
            vec![DestWalk {
                destination: NodeId::new(2),
                source: NodeId::new(0),
                nodes: vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
                vnf_positions: vec![1],
            }],
        );
        forest.validate(&inst).unwrap();
        let mut tracker = LoadTracker::new(&net, 100.0, 5.0);
        tracker.apply_forest(&net, &forest, 5.0);
        assert_eq!(tracker.edge_load(EdgeId::new(0)), 5.0);
        assert_eq!(tracker.node_load(NodeId::new(1)), 1.0);
        tracker.refresh_costs(&mut net);
        // 5/100 utilization is in the linear region: cost = load.
        assert!((net.graph().edge_cost(EdgeId::new(0)).value() - 5.0).abs() < 1e-9);
        // More load → higher cost.
        tracker.apply_forest(&net, &forest, 60.0);
        let before = net.graph().edge_cost(EdgeId::new(0));
        tracker.refresh_costs(&mut net);
        let _ = before;
        assert!(net.graph().edge_cost(EdgeId::new(0)).value() > 5.0);
    }
}

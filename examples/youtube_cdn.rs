//! The paper's headline scenario (§VIII-D): YouTube-style live streams with
//! a transcoder→watermark chain on the Fig. 13 testbed, comparing video QoE
//! across embeddings — the Table II experiment as a library example.
//!
//! Run with `cargo run --release --example youtube_cdn`.

use sof::core::{NodeKind, Request, ServiceChain, SofdaConfig};
use sof::graph::{Cost, NodeId, Rng64};
use sof::sim::{simulate_sessions, EnvironmentProfile, PlayerConfig, Session};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = sof::topo::testbed();
    let mut rng = Rng64::seed_from(2026);
    let mut net = sof::core::Network::all_switches(topo.graph.clone());
    // Every node hosts one candidate VM (§VIII-D: "each node can support
    // one VNF").
    for v in 0..14 {
        let vm = net.add_node(NodeKind::Vm, Cost::new(1.0));
        net.graph_mut().add_edge(vm, NodeId::new(v), Cost::ZERO);
    }
    let picks = rng.sample_indices(14, 6);
    let inst = sof::core::SofInstance::new(
        net,
        Request::new(
            vec![NodeId::new(picks[0]), NodeId::new(picks[1])],
            picks[2..6].iter().map(|&i| NodeId::new(i)).collect(),
            ServiceChain::from_names(["transcoder", "watermark"]),
        ),
    )?;

    // Available bandwidth 4.5–9 Mbps per physical link.
    let mut caps: HashMap<sof::graph::EdgeId, f64> = HashMap::new();
    for (e, edge) in inst.network.graph().edges() {
        let stub = edge.u.index() >= 14 || edge.v.index() >= 14;
        caps.insert(
            e,
            if stub {
                1000.0
            } else {
                rng.range_f64(4.5, 9.0)
            },
        );
    }
    let player = PlayerConfig::default(); // 137 s @ 8 Mbps

    for (name, out) in [
        (
            "SOFDA",
            sof::core::solve_sofda(&inst, &SofdaConfig::default())?,
        ),
        (
            "eNEMP",
            sof::baselines::solve_enemp(&inst, &SofdaConfig::default())?,
        ),
        (
            "eST",
            sof::baselines::solve_est(&inst, &SofdaConfig::default())?,
        ),
    ] {
        // Multicast: one session per service tree (one stream copy per link).
        let mut by_tree: std::collections::BTreeMap<
            sof::graph::NodeId,
            std::collections::BTreeSet<sof::graph::EdgeId>,
        > = Default::default();
        for w in &out.forest.walks {
            let entry = by_tree.entry(w.source).or_default();
            for p in w.nodes.windows(2) {
                if let Some(e) = inst.network.graph().edge_between(p[0], p[1]) {
                    entry.insert(e);
                }
            }
        }
        let sessions: Vec<Session> = by_tree
            .values()
            .map(|links| Session {
                links: links.iter().copied().collect(),
            })
            .collect();
        let qoe = simulate_sessions(
            &sessions,
            &caps,
            &player,
            &EnvironmentProfile::hardware_testbed(),
            1.25,
        );
        let startup: f64 = qoe.iter().map(|q| q.startup_latency_s).sum::<f64>() / qoe.len() as f64;
        let rebuf: f64 = qoe.iter().map(|q| q.rebuffering_s).sum::<f64>() / qoe.len() as f64;
        println!(
            "{name:<6} cost {:>8.2}   startup {startup:>5.1} s   rebuffering {rebuf:>6.1} s",
            out.cost.total().value()
        );
    }
    Ok(())
}

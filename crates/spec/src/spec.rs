//! The declarative [`ScenarioSpec`] model: what an experiment *is*, as
//! data — topology, scenario parameters, cost/solver configuration and a
//! workload — plus strict parsing (unknown keys are errors), semantic
//! validation with actionable messages, and lossless serialization back to
//! TOML or JSON.

use crate::value::{parse_json, parse_toml, write_json, write_toml, ParseError, Value};
use sof_bench::{ParamField, SweepAxis};
use sof_core::{DriftPolicy, JoinStrategy, OnlineConfig, SofdaConfig};
use sof_graph::Cost;
use sof_kstroll::StrollSolver;
use sof_runner::GroupChurnConfig;
use sof_sim::{ChurnParams, WorkloadParams};
use sof_steiner::SteinerSolver;
use sof_topo::{RegionDef, ScenarioParams, TopologySpec};
use std::fmt;

/// A spec-layer error (parse, unknown key, or semantic validation).
#[derive(Clone, Debug, PartialEq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl From<ParseError> for SpecError {
    fn from(e: ParseError) -> SpecError {
        SpecError(e.to_string())
    }
}

fn fail<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

// ---------------------------------------------------------------------------
// Strict table reader: every key must be consumed, leftovers are errors.
// ---------------------------------------------------------------------------

struct Reader<'v> {
    ctx: String,
    entries: Vec<(&'v String, &'v Value)>,
    taken: Vec<bool>,
}

impl<'v> Reader<'v> {
    fn new(ctx: &str, v: &'v Value) -> Result<Reader<'v>, SpecError> {
        match v {
            Value::Table(entries) => Ok(Reader {
                ctx: ctx.to_string(),
                entries: entries.iter().map(|(k, v)| (k, v)).collect(),
                taken: vec![false; entries.len()],
            }),
            other => fail(format!(
                "{ctx}: expected a table, found {}",
                other.type_name()
            )),
        }
    }

    fn take(&mut self, key: &str) -> Option<&'v Value> {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if *k == key {
                self.taken[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn path(&self, key: &str) -> String {
        if self.ctx.is_empty() {
            format!("'{key}'")
        } else {
            format!("'{}.{key}'", self.ctx)
        }
    }

    fn opt_str(&mut self, key: &str) -> Result<Option<String>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s.clone())),
            Some(other) => fail(format!(
                "{} must be a string, found {}",
                self.path(key),
                other.type_name()
            )),
        }
    }

    fn str_or(&mut self, key: &str, default: &str) -> Result<String, SpecError> {
        Ok(self.opt_str(key)?.unwrap_or_else(|| default.to_string()))
    }

    fn opt_bool(&mut self, key: &str) -> Result<Option<bool>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Bool(b)) => Ok(Some(*b)),
            Some(other) => fail(format!(
                "{} must be a boolean, found {}",
                self.path(key),
                other.type_name()
            )),
        }
    }

    fn opt_u64(&mut self, key: &str) -> Result<Option<u64>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
            Some(Value::Int(i)) => fail(format!(
                "{} must be a non-negative integer, found {i}",
                self.path(key)
            )),
            Some(other) => fail(format!(
                "{} must be an integer, found {}",
                self.path(key),
                other.type_name()
            )),
        }
    }

    fn opt_usize(&mut self, key: &str) -> Result<Option<usize>, SpecError> {
        Ok(self.opt_u64(key)?.map(|v| v as usize))
    }

    fn opt_f64(&mut self, key: &str) -> Result<Option<f64>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => v.as_f64().map(Some).ok_or_else(|| {
                SpecError(format!(
                    "{} must be a number, found {}",
                    self.path(key),
                    v.type_name()
                ))
            }),
        }
    }

    fn opt_usize_list(&mut self, key: &str) -> Result<Option<Vec<usize>>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Value::Int(i) if *i >= 0 => out.push(*i as usize),
                        other => {
                            return fail(format!(
                                "{} must contain non-negative integers, found {}",
                                self.path(key),
                                other.type_name()
                            ))
                        }
                    }
                }
                Ok(Some(out))
            }
            Some(other) => fail(format!(
                "{} must be an array, found {}",
                self.path(key),
                other.type_name()
            )),
        }
    }

    fn opt_str_list(&mut self, key: &str) -> Result<Option<Vec<String>>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Value::Str(s) => out.push(s.clone()),
                        other => {
                            return fail(format!(
                                "{} must contain strings, found {}",
                                self.path(key),
                                other.type_name()
                            ))
                        }
                    }
                }
                Ok(Some(out))
            }
            Some(other) => fail(format!(
                "{} must be an array, found {}",
                self.path(key),
                other.type_name()
            )),
        }
    }

    /// A `[lo, hi]` inclusive range.
    fn opt_range(&mut self, key: &str) -> Result<Option<(usize, usize)>, SpecError> {
        let Some(list) = self.opt_usize_list(key)? else {
            return Ok(None);
        };
        match list.as_slice() {
            [lo, hi] if lo <= hi => Ok(Some((*lo, *hi))),
            [lo, hi] => fail(format!(
                "{} range is inverted ([{lo}, {hi}])",
                self.path(key)
            )),
            other => fail(format!(
                "{} must be a two-element [lo, hi] range, found {} element(s)",
                self.path(key),
                other.len()
            )),
        }
    }

    /// Sub-tables/arrays handed to nested readers.
    fn take_raw(&mut self, key: &str) -> Option<&'v Value> {
        self.take(key)
    }

    /// Errors on any unconsumed key, naming it and the valid keys.
    fn finish(self, valid: &[&str]) -> Result<(), SpecError> {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !self.taken[i] {
                return fail(format!(
                    "unknown key {} (valid keys here: {})",
                    self.path(k),
                    valid.join(", ")
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The model
// ---------------------------------------------------------------------------

/// Which measurement a grid workload reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridMetric {
    /// Mean forest cost.
    Cost,
    /// Mean enabled-VM count.
    UsedVms,
}

impl GridMetric {
    /// The spec-file name.
    pub fn as_str(&self) -> &'static str {
        match self {
            GridMetric::Cost => "cost",
            GridMetric::UsedVms => "used_vms",
        }
    }

    /// The display name the figures use.
    pub fn display(&self) -> &'static str {
        match self {
            GridMetric::Cost => "cost",
            GridMetric::UsedVms => "used VMs",
        }
    }

    fn from_name(name: &str) -> Result<GridMetric, SpecError> {
        match name {
            "cost" => Ok(GridMetric::Cost),
            "used_vms" => Ok(GridMetric::UsedVms),
            other => fail(format!(
                "unknown metric '{other}' (expected 'cost' or 'used_vms')"
            )),
        }
    }
}

/// Viewer-churn parameters for one online group (compiles to
/// [`sof_sim::ChurnParams`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Inclusive range of candidate-source counts for the initial draw.
    pub sources: (usize, usize),
    /// Inclusive range of destination counts for the initial draw.
    pub destinations: (usize, usize),
    /// Demanded chain length.
    pub chain_len: usize,
    /// Per-request demand (Mbps).
    pub demand_mbps: f64,
    /// Inclusive range of viewers leaving per arrival.
    pub leaves: (usize, usize),
    /// Inclusive range of viewers joining per arrival.
    pub joins: (usize, usize),
}

impl ChurnSpec {
    /// The paper's SoftLayer online setup with 1–3 viewers of churn.
    pub fn softlayer() -> ChurnSpec {
        ChurnSpec::from_params(&ChurnParams::softlayer())
    }

    /// The paper's Cogent online setup with 2–5 viewers of churn.
    pub fn cogent() -> ChurnSpec {
        ChurnSpec::from_params(&ChurnParams::cogent())
    }

    /// Converts from the simulator's parameter struct.
    pub fn from_params(p: &ChurnParams) -> ChurnSpec {
        ChurnSpec {
            sources: p.base.sources,
            destinations: p.base.destinations,
            chain_len: p.base.chain_len,
            demand_mbps: p.base.demand_mbps,
            leaves: p.leaves,
            joins: p.joins,
        }
    }

    /// Compiles to the simulator's parameter struct.
    pub fn to_params(&self) -> ChurnParams {
        ChurnParams {
            base: WorkloadParams {
                sources: self.sources,
                destinations: self.destinations,
                chain_len: self.chain_len,
                demand_mbps: self.demand_mbps,
            },
            leaves: self.leaves,
            joins: self.joins,
        }
    }
}

/// One churning multicast group in an online workload.
#[derive(Clone, Debug, PartialEq)]
pub struct OnlineGroup {
    /// Topology override (default: the spec's top-level topology).
    pub topology: Option<TopologySpec>,
    /// Arrivals to process (0 = the group is skipped).
    pub requests: usize,
    /// Run a from-scratch SOFDA baseline next to the incremental sessions.
    pub scratch: bool,
    /// VMs attached per data center when building the instance.
    pub vms_per_dc: usize,
    /// The churn process.
    pub churn: ChurnSpec,
}

/// Deterministic failure injection: the spec-level `failures` axis shared
/// by online and churn-at-scale workloads.
///
/// Online workloads keep the legacy semantics (every `every` arrivals,
/// `count` VMs carrying VNFs are marked failed in every session).
/// Churn-at-scale workloads compile the axis into a
/// [`sof_survive::FailurePlan`]: a seeded failure process over the scoped
/// element universe, a repair-time range, and one or more protection
/// policies to run (one streamed leg per policy, identical trace).
#[derive(Clone, Debug, PartialEq)]
pub struct FailureSpec {
    /// Periodic fire interval in arrivals/rounds (≥ 1).
    pub every: usize,
    /// Legacy element kind (online only accepts `"vm"`).
    pub kind: String,
    /// Elements failed per periodic firing.
    pub count: usize,
    /// Failure process: `"periodic"`, `"poisson"`, or `"scripted"`.
    pub process: String,
    /// Per-element per-round failure probability (poisson process).
    pub rate: f64,
    /// Element kinds the universe draws from (subset of `"vm"`, `"link"`,
    /// `"node"`, `"domain"`); defaults to `[kind]`.
    pub scope: Vec<String>,
    /// Inclusive rounds-until-repair range; `[0, 0]` = permanent.
    pub repair: (usize, usize),
    /// Protection policies to run (`"reactive"`, `"backup-paths"`,
    /// `"standby-forest"`); churn-at-scale streams one leg per entry.
    pub policies: Vec<String>,
    /// Seed of the failure RNG stream (independent of churn streams).
    pub seed: u64,
    /// Explicit event list for the scripted process.
    pub events: Vec<FailureEventSpec>,
}

/// One entry of a scripted failure trace in a spec file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureEventSpec {
    /// Round at which the element fails.
    pub at: usize,
    /// What fails, as an element reference (`"vm:12"`, `"link:3-7"`,
    /// `"node:5"`, `"domain:us-east"`).
    pub element: String,
    /// Rounds until repair (`0` = never).
    pub repair: usize,
}

impl FailureSpec {
    /// The axis with every field at its reader default, for the given
    /// legacy kind.
    pub fn defaults(kind: &str) -> FailureSpec {
        FailureSpec {
            every: 10,
            kind: kind.to_string(),
            count: 1,
            process: "periodic".into(),
            rate: 0.0,
            scope: vec![kind.to_string()],
            repair: (0, 0),
            policies: vec!["reactive".into()],
            seed: 0,
            events: Vec::new(),
        }
    }

    /// Compiles the axis into a validated [`sof_survive::FailurePlan`]
    /// running under `policy` (one of [`FailureSpec::policies`]).
    ///
    /// # Errors
    ///
    /// An actionable message naming the offending field.
    pub fn to_plan(&self, policy: &str) -> Result<sof_survive::FailurePlan, String> {
        let process = match self.process.as_str() {
            "periodic" => sof_survive::ProcessKind::Periodic {
                every: self.every,
                count: self.count,
            },
            "poisson" => sof_survive::ProcessKind::Poisson { rate: self.rate },
            "scripted" => {
                let mut events = Vec::with_capacity(self.events.len());
                for (i, ev) in self.events.iter().enumerate() {
                    let element: sof_survive::ElementRef = ev
                        .element
                        .parse()
                        .map_err(|e| format!("events[{i}].element: {e}"))?;
                    events.push(sof_survive::ScriptedEvent {
                        at: ev.at,
                        element,
                        repair: ev.repair,
                    });
                }
                sof_survive::ProcessKind::Scripted(events)
            }
            other => {
                return Err(format!(
                    "unknown failures process '{other}' (expected 'periodic', 'poisson', \
                     or 'scripted')"
                ))
            }
        };
        let plan = sof_survive::FailurePlan {
            process,
            scope: self.scope.clone(),
            repair: self.repair,
            policy: sof_survive::ProtectionPolicy::from_name(policy)?,
            seed: self.seed,
        };
        plan.validate()?;
        Ok(plan)
    }
}

/// Convergence stop condition for churn-at-scale workloads (compiles to
/// [`sof_runner::Ward::ConvergedCost`]): stop early once the windowed
/// mean forest cost settles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvergeSpec {
    /// Maximum relative change between consecutive windows still counted
    /// as "settled".
    pub epsilon: f64,
    /// Consecutive settled windows required before stopping.
    pub patience: usize,
}

/// Configuration of a churn-at-scale workload (compiles to
/// [`sof_runner::RunnerConfig`]): a [`sof_runner::Runner`] streams a
/// `SessionPool` of `groups` concurrent multicast groups over lazily
/// generated viewer-churn timelines until the event budget (or an
/// optional convergence / wall-clock ward) trips.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleSpec {
    /// Run seed: topology, group timelines and instances all derive from
    /// it.
    pub seed: u64,
    /// Solver registry name driving every group's session.
    pub solver: String,
    /// Concurrent groups (pool slots; retired groups are replaced in
    /// place).
    pub groups: usize,
    /// Event budget (the `MaxEvents` ward).
    pub events: u64,
    /// Events per window record.
    pub window: u64,
    /// Also emit one record per event (`emit = "events"`); off by
    /// default (`emit = "windows"`) — at full scale the per-event stream
    /// is millions of lines.
    pub emit_events: bool,
    /// VMs attached per region data-center node.
    pub vms_per_dc: usize,
    /// The named regions of the multi-region network.
    pub regions: Vec<RegionDef>,
    /// Gateway links joining every region pair.
    pub gateway_links: usize,
    /// Explicit symmetric region-pair cost factors (`pair_cost[i][j]`,
    /// one row per region); `None` uses the line-distance default
    /// `1 + |i − j|`. Compiles to [`sof_topo::RegionsParams::pair_cost`].
    pub pair_cost: Option<Vec<Vec<f64>>>,
    /// Per-group churn-process shape.
    pub churn: GroupChurnConfig,
    /// Optional failure axis: deterministic element failures interleaved
    /// between rounds, one streamed leg per listed protection policy.
    /// Boxed: the full plan vocabulary is large and usually absent.
    pub failures: Option<Box<FailureSpec>>,
    /// Optional converged-cost early stop.
    pub converge: Option<ConvergeSpec>,
    /// Optional wall-clock safety net in seconds (host-dependent — keep
    /// it out of golden runs).
    pub max_seconds: Option<f64>,
}

impl ScaleSpec {
    fn default_regions() -> Vec<RegionDef> {
        vec![
            RegionDef::new("us-east", 8, 2),
            RegionDef::new("eu-west", 8, 2),
            RegionDef::new("ap-south", 8, 2),
        ]
    }
}

/// The workload half of a spec: what actually runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// Fig. 7: tabulate the convex Fortz–Thorup cost function.
    CostCurve {
        /// Points beyond load 0 (the curve is sampled at `0..=points`).
        points: usize,
        /// Load step between points.
        step: f64,
        /// Link capacity handed to the cost function.
        capacity: f64,
    },
    /// Figs. 8–10: per-axis solver-comparison sweeps (mean cost).
    Sweep {
        /// Solver display names (registry lookup).
        solvers: Vec<String>,
        /// Averaging width.
        seeds: u64,
        /// Base RNG seed.
        seed: u64,
        /// The swept axes, each its own table.
        axes: Vec<SweepAxis>,
    },
    /// Fig. 11: a row × column parameter grid for one solver.
    Grid {
        /// Solver display name.
        solver: String,
        /// Averaging width.
        seeds: u64,
        /// Base RNG seed.
        seed: u64,
        /// Row axis (one table row per value).
        rows: SweepAxis,
        /// Column axis (one table column per value).
        cols: SweepAxis,
        /// One output table per metric.
        metrics: Vec<GridMetric>,
    },
    /// Table I: solver running time vs `inet` network size × source count.
    Runtime {
        /// Solver display name.
        solver: String,
        /// Base RNG seed.
        seed: u64,
        /// Network sizes (nodes; links = 2×, DCs = 2/5×).
        sizes: Vec<usize>,
        /// Source counts (columns).
        sources: Vec<usize>,
    },
    /// Table II: testbed QoE (startup latency / rebuffering) per solver.
    Qoe {
        /// Solver display names.
        solvers: Vec<String>,
        /// Averaging width.
        seeds: u64,
        /// Base RNG seed.
        seed: u64,
    },
    /// Fig. 12: online deployment under viewer churn (optionally many
    /// concurrent sessions, optionally with failure injection).
    Online {
        /// Base RNG seed.
        seed: u64,
        /// Solver display names served incrementally (the session-pool
        /// mode uses only the first).
        solvers: Vec<String>,
        /// Independent concurrent sessions per group (1 = the classic
        /// solver comparison; > 1 switches to the `SessionPool` mode).
        sessions: usize,
        /// The churning groups, run in order.
        groups: Vec<OnlineGroup>,
        /// Optional failure injection (boxed: large and usually absent).
        failures: Option<Box<FailureSpec>>,
    },
    /// Streaming churn at scale: a `sof_runner` run over lazily generated
    /// group timelines (10k+ groups, 1M+ events, bounded memory).
    ChurnAtScale(ScaleSpec),
}

impl Workload {
    /// The spec-file name of this workload kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Workload::CostCurve { .. } => "cost-curve",
            Workload::Sweep { .. } => "sweep",
            Workload::Grid { .. } => "grid",
            Workload::Runtime { .. } => "runtime",
            Workload::Qoe { .. } => "qoe",
            Workload::Online { .. } => "online",
            Workload::ChurnAtScale(_) => "churn-at-scale",
        }
    }

    /// The base RNG seed driving this workload.
    pub fn seed(&self) -> u64 {
        match self {
            Workload::CostCurve { .. } => 0,
            Workload::Sweep { seed, .. }
            | Workload::Grid { seed, .. }
            | Workload::Runtime { seed, .. }
            | Workload::Qoe { seed, .. }
            | Workload::Online { seed, .. } => *seed,
            Workload::ChurnAtScale(s) => s.seed,
        }
    }

    /// The averaging width, where the kind has one.
    pub fn seeds(&self) -> u64 {
        match self {
            Workload::Sweep { seeds, .. }
            | Workload::Grid { seeds, .. }
            | Workload::Qoe { seeds, .. } => *seeds,
            _ => 1,
        }
    }
}

/// Per-session tuning for online workloads (compiles to
/// [`sof_core::OnlineConfig`]; `demand_mbps` comes from the group's churn
/// spec, `mode` from the engine).
#[derive(Clone, Debug, PartialEq)]
pub struct OnlineSpec {
    /// Rebuild threshold (see [`DriftPolicy`]).
    pub drift: f64,
    /// What drift means: `"churn"` (count) or `"cost"` (divergence).
    pub drift_policy: DriftPolicy,
    /// Reroute pass cadence (arrivals; 0 = never).
    pub reroute_every: usize,
    /// Incremental-join attach search.
    pub join: JoinStrategy,
    /// Uniform link capacity (Mbps).
    pub link_capacity: f64,
    /// Uniform VM capacity (concurrent VNFs).
    pub vm_capacity: f64,
}

impl Default for OnlineSpec {
    fn default() -> OnlineSpec {
        let d = OnlineConfig::default();
        OnlineSpec {
            drift: d.rebuild_drift,
            drift_policy: d.drift_policy,
            reroute_every: d.reroute_every,
            join: d.join,
            link_capacity: d.link_capacity,
            vm_capacity: d.vm_capacity,
        }
    }
}

impl OnlineSpec {
    /// Compiles to an [`OnlineConfig`] (demand filled per group).
    pub fn to_config(&self, demand_mbps: f64) -> OnlineConfig {
        OnlineConfig {
            rebuild_drift: self.drift,
            drift_policy: self.drift_policy,
            reroute_every: self.reroute_every,
            join: self.join,
            link_capacity: self.link_capacity,
            vm_capacity: self.vm_capacity,
            demand_mbps,
            ..OnlineConfig::default()
        }
    }
}

/// A complete declarative scenario: metadata + topology + parameters +
/// solver configuration + workload. See `SPEC_FORMAT.md` at the repo root
/// for the file-format reference.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Identifier (preset name / output file stem).
    pub name: String,
    /// Display label used in headings (e.g. `"Fig. 8"`).
    pub label: String,
    /// Heading text (e.g. `"SoftLayer one-time deployment"`).
    pub title: String,
    /// Free-form description (shown by `sof list`).
    pub description: String,
    /// The network (online groups may override per group).
    pub topology: TopologySpec,
    /// Scenario parameters around which sweeps vary (the seed field is
    /// ignored — the workload seed governs).
    pub params: ScenarioParams,
    /// Solver configuration (the seed field is ignored — the workload
    /// seed governs).
    pub sofda: SofdaConfig,
    /// Online-session tuning (used by `online` workloads).
    pub online: OnlineSpec,
    /// What runs.
    pub workload: Workload,
}

impl ScenarioSpec {
    /// Parses a TOML spec (strict: unknown keys are errors) and validates
    /// it.
    ///
    /// # Errors
    ///
    /// [`SpecError`] describing the first syntactic, structural, or
    /// semantic problem.
    pub fn from_toml(src: &str) -> Result<ScenarioSpec, SpecError> {
        let v = parse_toml(src)?;
        ScenarioSpec::from_value(&v)
    }

    /// Parses a JSON spec (same schema as the TOML form).
    ///
    /// # Errors
    ///
    /// [`SpecError`] describing the first syntactic, structural, or
    /// semantic problem.
    pub fn from_json(src: &str) -> Result<ScenarioSpec, SpecError> {
        let v = parse_json(src)?;
        ScenarioSpec::from_value(&v)
    }

    /// Parses a spec from a file path, dispatching on the `.json`
    /// extension (anything else parses as TOML).
    ///
    /// # Errors
    ///
    /// [`SpecError`] for unreadable files and everything
    /// [`ScenarioSpec::from_toml`] rejects.
    pub fn from_path(path: &std::path::Path) -> Result<ScenarioSpec, SpecError> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
        let parsed = if path.extension().is_some_and(|e| e == "json") {
            ScenarioSpec::from_json(&src)
        } else {
            ScenarioSpec::from_toml(&src)
        };
        parsed.map_err(|e| SpecError(format!("{}: {e}", path.display())))
    }

    /// Builds the spec from a parsed [`Value`] tree and validates it.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the offending key for structural problems
    /// (wrong types, unknown keys) or the violated constraint.
    pub fn from_value(v: &Value) -> Result<ScenarioSpec, SpecError> {
        let mut r = Reader::new("", v)?;
        let name = r
            .opt_str("name")?
            .ok_or_else(|| SpecError("spec is missing the required 'name' key".into()))?;
        let label = r.str_or("label", &name)?;
        let title = r.str_or("title", "")?;
        let description = r.str_or("description", "")?;

        let topology = match r.take_raw("topology") {
            None => TopologySpec::named("softlayer"),
            Some(t) => read_topology("topology", t)?,
        };
        let params = match r.take_raw("params") {
            None => ScenarioParams::paper_defaults(),
            Some(t) => read_params(t)?,
        };
        let sofda = match r.take_raw("sofda") {
            None => SofdaConfig::default(),
            Some(t) => read_sofda(t)?,
        };
        let online = match r.take_raw("online") {
            None => OnlineSpec::default(),
            Some(t) => read_online(t)?,
        };
        let workload_value = r
            .take_raw("workload")
            .ok_or_else(|| SpecError("spec is missing the required [workload] table".into()))?;
        let workload = read_workload(workload_value)?;
        r.finish(&[
            "name",
            "label",
            "title",
            "description",
            "topology",
            "params",
            "sofda",
            "online",
            "workload",
        ])?;

        let spec = ScenarioSpec {
            name,
            label,
            title,
            description,
            topology,
            params,
            sofda,
            online,
            workload,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Semantic validation: registry lookups and range checks beyond what
    /// the structural reader enforces.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return fail("'name' must not be empty");
        }
        sof_topo::validate_named(&self.topology).map_err(SpecError)?;
        let p = &self.params;
        if p.chain_len == 0 {
            return fail("'params.chain_len' must be at least 1");
        }
        if p.sources == 0 || p.destinations == 0 {
            return fail("'params.sources' and 'params.destinations' must be at least 1");
        }
        // `positive`/`non_negative` are NaN-rejecting (NaN fails both).
        let positive = |x: f64| x.is_finite() && x > 0.0;
        let non_negative = |x: f64| x.is_finite() && x >= 0.0;
        if !positive(p.setup_scale) {
            return fail("'params.setup_scale' must be positive");
        }
        if !non_negative(self.online.drift) {
            return fail("'online.drift' must be non-negative");
        }
        if !positive(self.online.link_capacity) || !positive(self.online.vm_capacity) {
            return fail("'online.link_capacity' and 'online.vm_capacity' must be positive");
        }
        let check_solver = |ctx: &str, name: &str| -> Result<(), SpecError> {
            if sof_solvers::by_name(name).is_none() {
                let known: Vec<&str> = sof_solvers::all().iter().map(|s| s.name()).collect();
                return fail(format!(
                    "{ctx}: unknown solver '{name}' (registered: {})",
                    known.join(", ")
                ));
            }
            Ok(())
        };
        let check_axis = |ctx: &str, axis: &SweepAxis| -> Result<(), SpecError> {
            if axis.values.is_empty() {
                return fail(format!("{ctx}: 'values' must not be empty"));
            }
            if matches!(axis.field, ParamField::ChainLen | ParamField::SetupScale)
                && axis.values.contains(&0)
            {
                return fail(format!(
                    "{ctx}: '{}' values must be at least 1",
                    axis.field.as_str()
                ));
            }
            Ok(())
        };
        match &self.workload {
            Workload::CostCurve {
                points,
                step,
                capacity,
            } => {
                if *points == 0 {
                    return fail("'workload.points' must be at least 1");
                }
                if !positive(*step) || !positive(*capacity) {
                    return fail("'workload.step' and 'workload.capacity' must be positive");
                }
            }
            Workload::Sweep {
                solvers,
                seeds,
                axes,
                ..
            } => {
                if solvers.is_empty() {
                    return fail("'workload.solvers' must name at least one solver");
                }
                for s in solvers {
                    check_solver("'workload.solvers'", s)?;
                }
                if *seeds == 0 {
                    return fail("'workload.seeds' must be at least 1");
                }
                if axes.is_empty() {
                    return fail("'workload.axes' must define at least one axis");
                }
                for (i, axis) in axes.iter().enumerate() {
                    check_axis(&format!("'workload.axes[{i}]'"), axis)?;
                }
            }
            Workload::Grid {
                solver,
                seeds,
                rows,
                cols,
                metrics,
                ..
            } => {
                check_solver("'workload.solver'", solver)?;
                if *seeds == 0 {
                    return fail("'workload.seeds' must be at least 1");
                }
                check_axis("'workload.rows'", rows)?;
                check_axis("'workload.cols'", cols)?;
                if metrics.is_empty() {
                    return fail("'workload.metrics' must name at least one metric");
                }
            }
            Workload::Runtime {
                solver,
                sizes,
                sources,
                ..
            } => {
                check_solver("'workload.solver'", solver)?;
                if sizes.is_empty() || sources.is_empty() {
                    return fail("'workload.sizes' and 'workload.sources' must not be empty");
                }
                if let Some(bad) = sizes.iter().find(|&&n| n < 10) {
                    return fail(format!(
                        "'workload.sizes' entries must be at least 10 nodes, got {bad}"
                    ));
                }
                if sources.contains(&0) {
                    return fail("'workload.sources' entries must be at least 1");
                }
            }
            Workload::Qoe { solvers, seeds, .. } => {
                if solvers.is_empty() {
                    return fail("'workload.solvers' must name at least one solver");
                }
                for s in solvers {
                    check_solver("'workload.solvers'", s)?;
                }
                if *seeds == 0 {
                    return fail("'workload.seeds' must be at least 1");
                }
            }
            Workload::Online {
                solvers,
                sessions,
                groups,
                failures,
                ..
            } => {
                if solvers.is_empty() {
                    return fail("'workload.solvers' must name at least one solver");
                }
                for s in solvers {
                    check_solver("'workload.solvers'", s)?;
                }
                if *sessions == 0 {
                    return fail("'workload.sessions' must be at least 1");
                }
                if groups.is_empty() {
                    return fail("'workload.groups' must define at least one group");
                }
                for (i, g) in groups.iter().enumerate() {
                    let ctx = format!("'workload.groups[{i}]'");
                    if let Some(t) = &g.topology {
                        sof_topo::validate_named(t)
                            .map_err(|e| SpecError(format!("{ctx}: {e}")))?;
                    }
                    if g.vms_per_dc == 0 {
                        return fail(format!("{ctx}: 'vms_per_dc' must be at least 1"));
                    }
                    let c = &g.churn;
                    if c.chain_len == 0 {
                        return fail(format!("{ctx}: 'churn.chain_len' must be at least 1"));
                    }
                    if !positive(c.demand_mbps) {
                        return fail(format!("{ctx}: 'churn.demand_mbps' must be positive"));
                    }
                    if c.sources.0 == 0 {
                        return fail(format!("{ctx}: 'churn.sources' must start at 1 or more"));
                    }
                    if c.destinations.0 == 0 {
                        return fail(format!(
                            "{ctx}: 'churn.destinations' must start at 1 or more"
                        ));
                    }
                }
                if let Some(f) = failures {
                    if f.every == 0 {
                        return fail("'workload.failures.every' must be at least 1");
                    }
                    if f.kind != "vm" {
                        return fail(format!(
                            "'workload.failures.kind' must be \"vm\", got \"{}\"",
                            f.kind
                        ));
                    }
                    if f.count == 0 {
                        return fail("'workload.failures.count' must be at least 1");
                    }
                    if f.process != "periodic" {
                        return fail(format!(
                            "'workload.failures.process' must be \"periodic\" for online \
                             workloads, got \"{}\"",
                            f.process
                        ));
                    }
                    if f.scope != ["vm"] {
                        return fail(
                            "'workload.failures.scope' must be [\"vm\"] for online workloads",
                        );
                    }
                    for p in &f.policies {
                        sof_survive::ProtectionPolicy::from_name(p)
                            .map_err(|e| SpecError(format!("'workload.failures.policies': {e}")))?;
                    }
                }
            }
            Workload::ChurnAtScale(s) => {
                check_solver("'workload.solver'", &s.solver)?;
                if s.groups == 0 {
                    return fail("'workload.groups' must be at least 1");
                }
                if s.events == 0 {
                    return fail("'workload.events' must be at least 1");
                }
                if s.window == 0 {
                    return fail("'workload.window' must be at least 1");
                }
                if s.vms_per_dc == 0 {
                    return fail("'workload.vms_per_dc' must be at least 1");
                }
                if s.gateway_links == 0 {
                    return fail("'workload.gateway_links' must be at least 1");
                }
                // Region shape, pair-cost matrix and churn ranges share
                // the runner's own validators, so the spec layer and
                // `RunnerConfig` can never disagree on what is legal.
                sof_topo::RegionsParams {
                    regions: s.regions.clone(),
                    gateway_links: s.gateway_links,
                    pair_cost: s.pair_cost.clone(),
                }
                .validate()
                .map_err(|e| SpecError(format!("'workload.regions': {e}")))?;
                s.churn
                    .validate()
                    .map_err(|e| SpecError(format!("'workload.{e}'")))?;
                if let Some(f) = &s.failures {
                    if f.policies.is_empty() {
                        return fail("'workload.failures.policies' must name at least one policy");
                    }
                    for p in &f.policies {
                        // Compiling per policy also runs FailurePlan::validate,
                        // so the spec layer and the runner can never disagree
                        // on what a legal failure axis is.
                        f.to_plan(p)
                            .map_err(|e| SpecError(format!("'workload.failures': {e}")))?;
                    }
                }
                if let Some(c) = &s.converge {
                    if !positive(c.epsilon) {
                        return fail("'workload.converge.epsilon' must be positive");
                    }
                    if c.patience == 0 {
                        return fail("'workload.converge.patience' must be at least 1");
                    }
                }
                if let Some(secs) = s.max_seconds {
                    if !positive(secs) {
                        return fail("'workload.max_seconds' must be positive");
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes the spec as a fully explicit [`Value`] tree: every field
    /// appears, defaults included, so a round trip through
    /// [`ScenarioSpec::from_value`] is the identity.
    pub fn to_value(&self) -> Value {
        let mut root = Value::table();
        root.set("name", Value::Str(self.name.clone()));
        root.set("label", Value::Str(self.label.clone()));
        root.set("title", Value::Str(self.title.clone()));
        root.set("description", Value::Str(self.description.clone()));
        root.set("topology", topology_value(&self.topology));
        root.set("params", params_value(&self.params));
        root.set("sofda", sofda_value(&self.sofda));
        root.set("online", online_value(&self.online));
        root.set("workload", workload_value(&self.workload));
        root
    }

    /// Serializes the spec as TOML (see [`ScenarioSpec::to_value`]).
    pub fn to_toml(&self) -> String {
        write_toml(&self.to_value())
    }

    /// Serializes the spec as compact JSON (see [`ScenarioSpec::to_value`]).
    pub fn to_json(&self) -> String {
        write_json(&self.to_value())
    }
}

// ---------------------------------------------------------------------------
// Readers for the sub-tables
// ---------------------------------------------------------------------------

fn read_topology(ctx: &str, v: &Value) -> Result<TopologySpec, SpecError> {
    // A bare string is shorthand for { name = "..." }.
    if let Value::Str(name) = v {
        return Ok(TopologySpec::named(name.clone()));
    }
    let mut r = Reader::new(ctx, v)?;
    let name = r
        .opt_str("name")?
        .ok_or_else(|| SpecError(format!("'{ctx}.name' is required")))?;
    let spec = TopologySpec {
        name,
        nodes: r.opt_usize("nodes")?,
        links: r.opt_usize("links")?,
        dcs: r.opt_usize("dcs")?,
        seed: r.opt_u64("seed")?,
    };
    r.finish(&["name", "nodes", "links", "dcs", "seed"])?;
    Ok(spec)
}

fn read_params(v: &Value) -> Result<ScenarioParams, SpecError> {
    let mut r = Reader::new("params", v)?;
    let d = ScenarioParams::paper_defaults();
    let p = ScenarioParams {
        vm_count: r.opt_usize("vm_count")?.unwrap_or(d.vm_count),
        sources: r.opt_usize("sources")?.unwrap_or(d.sources),
        destinations: r.opt_usize("destinations")?.unwrap_or(d.destinations),
        chain_len: r.opt_usize("chain_len")?.unwrap_or(d.chain_len),
        setup_scale: r.opt_f64("setup_scale")?.unwrap_or(d.setup_scale),
        seed: d.seed,
    };
    r.finish(&[
        "vm_count",
        "sources",
        "destinations",
        "chain_len",
        "setup_scale",
    ])?;
    Ok(p)
}

fn steiner_name(s: SteinerSolver) -> &'static str {
    match s {
        SteinerSolver::Mehlhorn => "mehlhorn",
        SteinerSolver::Kmb => "kmb",
        SteinerSolver::TakahashiMatsuyama => "takahashi",
        SteinerSolver::DreyfusWagner => "dreyfus-wagner",
        SteinerSolver::Auto => "auto",
    }
}

fn parse_steiner(name: &str) -> Result<SteinerSolver, SpecError> {
    match name.to_ascii_lowercase().as_str() {
        "mehlhorn" => Ok(SteinerSolver::Mehlhorn),
        "kmb" => Ok(SteinerSolver::Kmb),
        "takahashi" | "takahashi-matsuyama" => Ok(SteinerSolver::TakahashiMatsuyama),
        "dreyfus-wagner" | "exact" => Ok(SteinerSolver::DreyfusWagner),
        "auto" => Ok(SteinerSolver::Auto),
        other => fail(format!(
            "unknown steiner solver '{other}' (expected mehlhorn, kmb, takahashi, \
             dreyfus-wagner, or auto)"
        )),
    }
}

fn stroll_name(s: StrollSolver) -> String {
    match s {
        StrollSolver::Exact => "exact".into(),
        StrollSolver::Greedy => "greedy".into(),
        StrollSolver::Auto => "auto".into(),
        StrollSolver::ColorCoding { trials } => format!("color-coding:{trials}"),
    }
}

fn parse_stroll(name: &str) -> Result<StrollSolver, SpecError> {
    let lower = name.to_ascii_lowercase();
    if let Some(trials) = lower.strip_prefix("color-coding:") {
        let trials: usize = trials.parse().map_err(|_| {
            SpecError(format!(
                "invalid color-coding trial count in '{name}' (expected color-coding:N)"
            ))
        })?;
        if trials == 0 {
            return fail("color-coding needs at least one trial");
        }
        return Ok(StrollSolver::ColorCoding { trials });
    }
    match lower.as_str() {
        "exact" => Ok(StrollSolver::Exact),
        "greedy" => Ok(StrollSolver::Greedy),
        "auto" => Ok(StrollSolver::Auto),
        other => fail(format!(
            "unknown stroll solver '{other}' (expected exact, greedy, color-coding:N, or auto)"
        )),
    }
}

fn read_sofda(v: &Value) -> Result<SofdaConfig, SpecError> {
    let mut r = Reader::new("sofda", v)?;
    let d = SofdaConfig::default();
    let steiner = match r.opt_str("steiner")? {
        None => d.steiner,
        Some(s) => parse_steiner(&s)?,
    };
    let stroll = match r.opt_str("stroll")? {
        None => d.stroll,
        Some(s) => parse_stroll(&s)?,
    };
    let shorten = r.opt_bool("shorten")?.unwrap_or(d.shorten);
    let source_setup_cost = match r.opt_f64("source_setup_cost")? {
        None => None,
        Some(c) if c >= 0.0 => Some(Cost::new(c)),
        Some(c) => return fail(format!("'sofda.source_setup_cost' must be ≥ 0, got {c}")),
    };
    r.finish(&["steiner", "stroll", "shorten", "source_setup_cost"])?;
    Ok(SofdaConfig {
        steiner,
        stroll,
        shorten,
        source_setup_cost,
        seed: d.seed,
    })
}

fn read_online(v: &Value) -> Result<OnlineSpec, SpecError> {
    let mut r = Reader::new("online", v)?;
    let d = OnlineSpec::default();
    let drift_policy = match r.opt_str("drift_policy")? {
        None => d.drift_policy,
        Some(s) => DriftPolicy::from_name(&s).map_err(SpecError)?,
    };
    let join = match r.opt_str("join")? {
        None => d.join,
        Some(s) => JoinStrategy::from_name(&s).map_err(SpecError)?,
    };
    let spec = OnlineSpec {
        drift: r.opt_f64("drift")?.unwrap_or(d.drift),
        drift_policy,
        reroute_every: r.opt_usize("reroute_every")?.unwrap_or(d.reroute_every),
        join,
        link_capacity: r.opt_f64("link_capacity")?.unwrap_or(d.link_capacity),
        vm_capacity: r.opt_f64("vm_capacity")?.unwrap_or(d.vm_capacity),
    };
    r.finish(&[
        "drift",
        "drift_policy",
        "reroute_every",
        "join",
        "link_capacity",
        "vm_capacity",
    ])?;
    Ok(spec)
}

fn read_axis(ctx: &str, v: &Value) -> Result<SweepAxis, SpecError> {
    let mut r = Reader::new(ctx, v)?;
    let field_name = r
        .opt_str("field")?
        .ok_or_else(|| SpecError(format!("'{ctx}.field' is required")))?;
    let field = ParamField::from_name(&field_name).map_err(SpecError)?;
    let values = r
        .opt_usize_list("values")?
        .ok_or_else(|| SpecError(format!("'{ctx}.values' is required")))?;
    let label = r
        .opt_str("label")?
        .unwrap_or_else(|| field.default_label().to_string());
    r.finish(&["field", "values", "label"])?;
    Ok(SweepAxis {
        label,
        field,
        values,
    })
}

fn read_churn(ctx: &str, v: &Value) -> Result<ChurnSpec, SpecError> {
    let mut r = Reader::new(ctx, v)?;
    let need_range = |r: &mut Reader<'_>, key: &str| -> Result<(usize, usize), SpecError> {
        r.opt_range(key)?
            .ok_or_else(|| SpecError(format!("'{ctx}.{key}' is required (a [lo, hi] range)")))
    };
    let sources = need_range(&mut r, "sources")?;
    let destinations = need_range(&mut r, "destinations")?;
    let leaves = need_range(&mut r, "leaves")?;
    let joins = need_range(&mut r, "joins")?;
    let spec = ChurnSpec {
        sources,
        destinations,
        chain_len: r.opt_usize("chain_len")?.unwrap_or(3),
        demand_mbps: r.opt_f64("demand_mbps")?.unwrap_or(5.0),
        leaves,
        joins,
    };
    r.finish(&[
        "sources",
        "destinations",
        "chain_len",
        "demand_mbps",
        "leaves",
        "joins",
    ])?;
    Ok(spec)
}

fn read_group(ctx: &str, v: &Value) -> Result<OnlineGroup, SpecError> {
    let mut r = Reader::new(ctx, v)?;
    let topology = match r.take_raw("topology") {
        None => None,
        Some(t) => Some(read_topology(&format!("{ctx}.topology"), t)?),
    };
    let requests = r
        .opt_usize("requests")?
        .ok_or_else(|| SpecError(format!("'{ctx}.requests' is required")))?;
    let scratch = r.opt_bool("scratch")?.unwrap_or(false);
    let vms_per_dc = r.opt_usize("vms_per_dc")?.unwrap_or(5);
    let churn_value = r
        .take_raw("churn")
        .ok_or_else(|| SpecError(format!("'{ctx}.churn' is required")))?;
    let churn = read_churn(&format!("{ctx}.churn"), churn_value)?;
    r.finish(&["topology", "requests", "scratch", "vms_per_dc", "churn"])?;
    Ok(OnlineGroup {
        topology,
        requests,
        scratch,
        vms_per_dc,
        churn,
    })
}

fn read_workload(v: &Value) -> Result<Workload, SpecError> {
    let mut r = Reader::new("workload", v)?;
    let kind = r
        .opt_str("kind")?
        .ok_or_else(|| SpecError("'workload.kind' is required".into()))?;
    let workload = match kind.as_str() {
        "cost-curve" => {
            let w = Workload::CostCurve {
                points: r.opt_usize("points")?.unwrap_or(24),
                step: r.opt_f64("step")?.unwrap_or(0.05),
                capacity: r.opt_f64("capacity")?.unwrap_or(1.0),
            };
            r.finish(&["kind", "points", "step", "capacity"])?;
            w
        }
        "sweep" => {
            let solvers = r.opt_str_list("solvers")?.unwrap_or_default();
            let seeds = r.opt_u64("seeds")?.unwrap_or(1);
            let seed = r.opt_u64("seed")?.unwrap_or(1000);
            let axes = match r.take_raw("axes") {
                None => sof_bench::standard_axes(0),
                Some(Value::Array(items)) => {
                    let mut axes = Vec::with_capacity(items.len());
                    for (i, item) in items.iter().enumerate() {
                        axes.push(read_axis(&format!("workload.axes[{i}]"), item)?);
                    }
                    axes
                }
                Some(other) => {
                    return fail(format!(
                        "'workload.axes' must be an array of tables, found {}",
                        other.type_name()
                    ))
                }
            };
            let w = Workload::Sweep {
                solvers,
                seeds,
                seed,
                axes,
            };
            r.finish(&["kind", "solvers", "seeds", "seed", "axes"])?;
            w
        }
        "grid" => {
            let solver = r.str_or("solver", "SOFDA")?;
            let seeds = r.opt_u64("seeds")?.unwrap_or(1);
            let seed = r.opt_u64("seed")?.unwrap_or(1000);
            let rows_value = r
                .take_raw("rows")
                .ok_or_else(|| SpecError("'workload.rows' is required for grid".into()))?;
            let rows = read_axis("workload.rows", rows_value)?;
            let cols_value = r
                .take_raw("cols")
                .ok_or_else(|| SpecError("'workload.cols' is required for grid".into()))?;
            let cols = read_axis("workload.cols", cols_value)?;
            let metric_names = r
                .opt_str_list("metrics")?
                .unwrap_or_else(|| vec!["cost".into()]);
            let mut metrics = Vec::with_capacity(metric_names.len());
            for m in &metric_names {
                metrics.push(GridMetric::from_name(m)?);
            }
            let w = Workload::Grid {
                solver,
                seeds,
                seed,
                rows,
                cols,
                metrics,
            };
            r.finish(&["kind", "solver", "seeds", "seed", "rows", "cols", "metrics"])?;
            w
        }
        "runtime" => {
            let w = Workload::Runtime {
                solver: r.str_or("solver", "SOFDA")?,
                seed: r.opt_u64("seed")?.unwrap_or(1000),
                sizes: r
                    .opt_usize_list("sizes")?
                    .unwrap_or_else(|| vec![1000, 2000, 3000, 4000, 5000]),
                sources: r
                    .opt_usize_list("sources")?
                    .unwrap_or_else(|| vec![2, 8, 14, 20, 26]),
            };
            r.finish(&["kind", "solver", "seed", "sizes", "sources"])?;
            w
        }
        "qoe" => {
            let w = Workload::Qoe {
                solvers: r
                    .opt_str_list("solvers")?
                    .unwrap_or_else(|| vec!["SOFDA".into(), "eNEMP".into(), "eST".into()]),
                seeds: r.opt_u64("seeds")?.unwrap_or(1),
                seed: r.opt_u64("seed")?.unwrap_or(1000),
            };
            r.finish(&["kind", "solvers", "seeds", "seed"])?;
            w
        }
        "online" => {
            let seed = r.opt_u64("seed")?.unwrap_or(1000);
            let solvers = r
                .opt_str_list("solvers")?
                .unwrap_or_else(|| vec!["SOFDA".into(), "eNEMP".into(), "eST".into(), "ST".into()]);
            let sessions = r.opt_usize("sessions")?.unwrap_or(1);
            let groups = match r.take_raw("groups") {
                None => return fail("'workload.groups' is required for online"),
                Some(Value::Array(items)) => {
                    let mut groups = Vec::with_capacity(items.len());
                    for (i, item) in items.iter().enumerate() {
                        groups.push(read_group(&format!("workload.groups[{i}]"), item)?);
                    }
                    groups
                }
                Some(other) => {
                    return fail(format!(
                        "'workload.groups' must be an array of tables, found {}",
                        other.type_name()
                    ))
                }
            };
            let failures = match r.take_raw("failures") {
                None => None,
                Some(t) => Some(Box::new(read_failures("workload.failures", t)?)),
            };
            let w = Workload::Online {
                seed,
                solvers,
                sessions,
                groups,
                failures,
            };
            r.finish(&["kind", "seed", "solvers", "sessions", "groups", "failures"])?;
            w
        }
        "churn-at-scale" => {
            let seed = r.opt_u64("seed")?.unwrap_or(1000);
            let solver = r.str_or("solver", "SOFDA")?;
            let groups = r.opt_usize("groups")?.unwrap_or(100);
            let events = r.opt_u64("events")?.unwrap_or(100_000);
            let window = r.opt_u64("window")?.unwrap_or(1000);
            let emit = r.str_or("emit", "windows")?;
            let emit_events = match emit.as_str() {
                "windows" => false,
                "events" => true,
                other => {
                    return fail(format!(
                        "'workload.emit' must be \"windows\" or \"events\", got \"{other}\""
                    ))
                }
            };
            let vms_per_dc = r.opt_usize("vms_per_dc")?.unwrap_or(1);
            let gateway_links = r.opt_usize("gateway_links")?.unwrap_or(2);
            let regions = match r.take_raw("regions") {
                None => ScaleSpec::default_regions(),
                Some(Value::Array(items)) => {
                    let mut regions = Vec::with_capacity(items.len());
                    for (i, item) in items.iter().enumerate() {
                        regions.push(read_region(&format!("workload.regions[{i}]"), item)?);
                    }
                    regions
                }
                Some(other) => {
                    return fail(format!(
                        "'workload.regions' must be an array of tables, found {}",
                        other.type_name()
                    ))
                }
            };
            let pair_cost = match r.take_raw("pair_cost") {
                None => None,
                Some(Value::Array(rows)) => {
                    let mut matrix = Vec::with_capacity(rows.len());
                    for (i, row) in rows.iter().enumerate() {
                        let Value::Array(cells) = row else {
                            return fail(format!(
                                "'workload.pair_cost[{i}]' must be an array of numbers, found {}",
                                row.type_name()
                            ));
                        };
                        let mut out = Vec::with_capacity(cells.len());
                        for (j, cell) in cells.iter().enumerate() {
                            match cell.as_f64() {
                                Some(f) => out.push(f),
                                None => {
                                    return fail(format!(
                                        "'workload.pair_cost[{i}][{j}]' must be a number, \
                                         found {}",
                                        cell.type_name()
                                    ))
                                }
                            }
                        }
                        matrix.push(out);
                    }
                    Some(matrix)
                }
                Some(other) => {
                    return fail(format!(
                        "'workload.pair_cost' must be an array of number rows \
                         (one per region), found {}",
                        other.type_name()
                    ))
                }
            };
            let churn = match r.take_raw("churn") {
                None => GroupChurnConfig::default(),
                Some(t) => read_scale_churn("workload.churn", t)?,
            };
            let failures = match r.take_raw("failures") {
                None => None,
                Some(t) => Some(Box::new(read_failures("workload.failures", t)?)),
            };
            let converge = match r.take_raw("converge") {
                None => None,
                Some(t) => {
                    let mut cr = Reader::new("workload.converge", t)?;
                    let c = ConvergeSpec {
                        epsilon: cr.opt_f64("epsilon")?.unwrap_or(1e-3),
                        patience: cr.opt_usize("patience")?.unwrap_or(3),
                    };
                    cr.finish(&["epsilon", "patience"])?;
                    Some(c)
                }
            };
            let max_seconds = r.opt_f64("max_seconds")?;
            let w = Workload::ChurnAtScale(ScaleSpec {
                seed,
                solver,
                groups,
                events,
                window,
                emit_events,
                vms_per_dc,
                regions,
                gateway_links,
                pair_cost,
                churn,
                failures,
                converge,
                max_seconds,
            });
            r.finish(&[
                "kind",
                "seed",
                "solver",
                "groups",
                "events",
                "window",
                "emit",
                "vms_per_dc",
                "gateway_links",
                "regions",
                "pair_cost",
                "churn",
                "failures",
                "converge",
                "max_seconds",
            ])?;
            w
        }
        other => {
            return fail(format!(
                "unknown workload kind '{other}' (expected cost-curve, sweep, grid, runtime, \
                 qoe, online, or churn-at-scale)"
            ))
        }
    };
    Ok(workload)
}

fn read_region(ctx: &str, v: &Value) -> Result<RegionDef, SpecError> {
    let mut r = Reader::new(ctx, v)?;
    let name = r
        .opt_str("name")?
        .ok_or_else(|| SpecError(format!("'{ctx}.name' is required")))?;
    let nodes = r
        .opt_usize("nodes")?
        .ok_or_else(|| SpecError(format!("'{ctx}.nodes' is required")))?;
    let dcs = r.opt_usize("dcs")?.unwrap_or(1);
    r.finish(&["name", "nodes", "dcs"])?;
    Ok(RegionDef { name, nodes, dcs })
}

fn read_scale_churn(ctx: &str, v: &Value) -> Result<GroupChurnConfig, SpecError> {
    let mut r = Reader::new(ctx, v)?;
    let d = GroupChurnConfig::default();
    let lifetime = match r.opt_range("lifetime")? {
        Some((lo, hi)) => (lo as u64, hi as u64),
        None => d.lifetime,
    };
    let cfg = GroupChurnConfig {
        viewers: r.opt_range("viewers")?.unwrap_or(d.viewers),
        sources: r.opt_range("sources")?.unwrap_or(d.sources),
        chain_len: r.opt_usize("chain_len")?.unwrap_or(d.chain_len),
        demand_mbps: r.opt_f64("demand_mbps")?.unwrap_or(d.demand_mbps),
        leaves: r.opt_range("leaves")?.unwrap_or(d.leaves),
        joins: r.opt_range("joins")?.unwrap_or(d.joins),
        lifetime,
        roam: r.opt_f64("roam")?.unwrap_or(d.roam),
    };
    r.finish(&[
        "viewers",
        "sources",
        "chain_len",
        "demand_mbps",
        "leaves",
        "joins",
        "lifetime",
        "roam",
    ])?;
    Ok(cfg)
}

fn read_failures(ctx: &str, v: &Value) -> Result<FailureSpec, SpecError> {
    let mut r = Reader::new(ctx, v)?;
    let kind = r.str_or("kind", "vm")?;
    let d = FailureSpec::defaults(&kind);
    let events = match r.take_raw("events") {
        None => Vec::new(),
        Some(Value::Array(items)) => {
            let mut events = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let ectx = format!("{ctx}.events[{i}]");
                let mut er = Reader::new(&ectx, item)?;
                let ev = FailureEventSpec {
                    at: er
                        .opt_usize("at")?
                        .ok_or_else(|| SpecError(format!("'{ectx}.at' is required")))?,
                    element: er
                        .opt_str("element")?
                        .ok_or_else(|| SpecError(format!("'{ectx}.element' is required")))?,
                    repair: er.opt_usize("repair")?.unwrap_or(0),
                };
                er.finish(&["at", "element", "repair"])?;
                events.push(ev);
            }
            events
        }
        Some(other) => {
            return fail(format!(
                "'{ctx}.events' must be an array of tables, found {}",
                other.type_name()
            ))
        }
    };
    let f = FailureSpec {
        every: r.opt_usize("every")?.unwrap_or(d.every),
        count: r.opt_usize("count")?.unwrap_or(d.count),
        process: r.str_or("process", &d.process)?,
        rate: r.opt_f64("rate")?.unwrap_or(d.rate),
        scope: r.opt_str_list("scope")?.unwrap_or(d.scope),
        repair: r.opt_range("repair")?.unwrap_or(d.repair),
        policies: r.opt_str_list("policies")?.unwrap_or(d.policies),
        seed: r.opt_u64("seed")?.unwrap_or(d.seed),
        kind,
        events,
    };
    r.finish(&[
        "every", "kind", "count", "process", "rate", "scope", "repair", "policies", "seed",
        "events",
    ])?;
    Ok(f)
}

// ---------------------------------------------------------------------------
// Writers (Value builders)
// ---------------------------------------------------------------------------

fn usize_array(values: &[usize]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Int(v as i64)).collect())
}

fn str_array(values: &[String]) -> Value {
    Value::Array(values.iter().map(|v| Value::Str(v.clone())).collect())
}

fn range_value(r: (usize, usize)) -> Value {
    Value::Array(vec![Value::Int(r.0 as i64), Value::Int(r.1 as i64)])
}

fn failures_value(f: &FailureSpec) -> Value {
    let mut fv = Value::table();
    fv.set("every", Value::Int(f.every as i64));
    fv.set("kind", Value::Str(f.kind.clone()));
    fv.set("count", Value::Int(f.count as i64));
    fv.set("process", Value::Str(f.process.clone()));
    fv.set("rate", Value::Float(f.rate));
    fv.set("scope", str_array(&f.scope));
    fv.set("repair", range_value(f.repair));
    fv.set("policies", str_array(&f.policies));
    fv.set("seed", Value::Int(f.seed as i64));
    if !f.events.is_empty() {
        fv.set(
            "events",
            Value::Array(
                f.events
                    .iter()
                    .map(|ev| {
                        let mut evv = Value::table();
                        evv.set("at", Value::Int(ev.at as i64));
                        evv.set("element", Value::Str(ev.element.clone()));
                        evv.set("repair", Value::Int(ev.repair as i64));
                        evv
                    })
                    .collect(),
            ),
        );
    }
    fv
}

fn topology_value(t: &TopologySpec) -> Value {
    let mut v = Value::table();
    v.set("name", Value::Str(t.name.clone()));
    if let Some(n) = t.nodes {
        v.set("nodes", Value::Int(n as i64));
    }
    if let Some(n) = t.links {
        v.set("links", Value::Int(n as i64));
    }
    if let Some(n) = t.dcs {
        v.set("dcs", Value::Int(n as i64));
    }
    if let Some(s) = t.seed {
        v.set("seed", Value::Int(s as i64));
    }
    v
}

fn params_value(p: &ScenarioParams) -> Value {
    let mut v = Value::table();
    v.set("vm_count", Value::Int(p.vm_count as i64));
    v.set("sources", Value::Int(p.sources as i64));
    v.set("destinations", Value::Int(p.destinations as i64));
    v.set("chain_len", Value::Int(p.chain_len as i64));
    v.set("setup_scale", Value::Float(p.setup_scale));
    v
}

fn sofda_value(c: &SofdaConfig) -> Value {
    let mut v = Value::table();
    v.set("steiner", Value::Str(steiner_name(c.steiner).into()));
    v.set("stroll", Value::Str(stroll_name(c.stroll)));
    v.set("shorten", Value::Bool(c.shorten));
    if let Some(cost) = c.source_setup_cost {
        v.set("source_setup_cost", Value::Float(cost.value()));
    }
    v
}

fn online_value(o: &OnlineSpec) -> Value {
    let mut v = Value::table();
    v.set("drift", Value::Float(o.drift));
    v.set("drift_policy", Value::Str(o.drift_policy.as_str().into()));
    v.set("reroute_every", Value::Int(o.reroute_every as i64));
    v.set("join", Value::Str(o.join.as_str().into()));
    v.set("link_capacity", Value::Float(o.link_capacity));
    v.set("vm_capacity", Value::Float(o.vm_capacity));
    v
}

fn axis_value(a: &SweepAxis) -> Value {
    let mut v = Value::table();
    v.set("field", Value::Str(a.field.as_str().into()));
    v.set("values", usize_array(&a.values));
    v.set("label", Value::Str(a.label.clone()));
    v
}

fn churn_value(c: &ChurnSpec) -> Value {
    let mut v = Value::table();
    v.set("sources", range_value(c.sources));
    v.set("destinations", range_value(c.destinations));
    v.set("chain_len", Value::Int(c.chain_len as i64));
    v.set("demand_mbps", Value::Float(c.demand_mbps));
    v.set("leaves", range_value(c.leaves));
    v.set("joins", range_value(c.joins));
    v
}

fn workload_value(w: &Workload) -> Value {
    let mut v = Value::table();
    v.set("kind", Value::Str(w.kind().into()));
    match w {
        Workload::CostCurve {
            points,
            step,
            capacity,
        } => {
            v.set("points", Value::Int(*points as i64));
            v.set("step", Value::Float(*step));
            v.set("capacity", Value::Float(*capacity));
        }
        Workload::Sweep {
            solvers,
            seeds,
            seed,
            axes,
        } => {
            v.set("solvers", str_array(solvers));
            v.set("seeds", Value::Int(*seeds as i64));
            v.set("seed", Value::Int(*seed as i64));
            v.set("axes", Value::Array(axes.iter().map(axis_value).collect()));
        }
        Workload::Grid {
            solver,
            seeds,
            seed,
            rows,
            cols,
            metrics,
        } => {
            v.set("solver", Value::Str(solver.clone()));
            v.set("seeds", Value::Int(*seeds as i64));
            v.set("seed", Value::Int(*seed as i64));
            v.set("rows", axis_value(rows));
            v.set("cols", axis_value(cols));
            v.set(
                "metrics",
                Value::Array(
                    metrics
                        .iter()
                        .map(|m| Value::Str(m.as_str().into()))
                        .collect(),
                ),
            );
        }
        Workload::Runtime {
            solver,
            seed,
            sizes,
            sources,
        } => {
            v.set("solver", Value::Str(solver.clone()));
            v.set("seed", Value::Int(*seed as i64));
            v.set("sizes", usize_array(sizes));
            v.set("sources", usize_array(sources));
        }
        Workload::Qoe {
            solvers,
            seeds,
            seed,
        } => {
            v.set("solvers", str_array(solvers));
            v.set("seeds", Value::Int(*seeds as i64));
            v.set("seed", Value::Int(*seed as i64));
        }
        Workload::Online {
            seed,
            solvers,
            sessions,
            groups,
            failures,
        } => {
            v.set("seed", Value::Int(*seed as i64));
            v.set("solvers", str_array(solvers));
            v.set("sessions", Value::Int(*sessions as i64));
            v.set(
                "groups",
                Value::Array(
                    groups
                        .iter()
                        .map(|g| {
                            let mut gv = Value::table();
                            if let Some(t) = &g.topology {
                                gv.set("topology", topology_value(t));
                            }
                            gv.set("requests", Value::Int(g.requests as i64));
                            gv.set("scratch", Value::Bool(g.scratch));
                            gv.set("vms_per_dc", Value::Int(g.vms_per_dc as i64));
                            gv.set("churn", churn_value(&g.churn));
                            gv
                        })
                        .collect(),
                ),
            );
            if let Some(f) = failures {
                v.set("failures", failures_value(f));
            }
        }
        Workload::ChurnAtScale(s) => {
            v.set("seed", Value::Int(s.seed as i64));
            v.set("solver", Value::Str(s.solver.clone()));
            v.set("groups", Value::Int(s.groups as i64));
            v.set("events", Value::Int(s.events as i64));
            v.set("window", Value::Int(s.window as i64));
            v.set(
                "emit",
                Value::Str(if s.emit_events { "events" } else { "windows" }.into()),
            );
            v.set("vms_per_dc", Value::Int(s.vms_per_dc as i64));
            v.set("gateway_links", Value::Int(s.gateway_links as i64));
            v.set(
                "regions",
                Value::Array(
                    s.regions
                        .iter()
                        .map(|r| {
                            let mut rv = Value::table();
                            rv.set("name", Value::Str(r.name.clone()));
                            rv.set("nodes", Value::Int(r.nodes as i64));
                            rv.set("dcs", Value::Int(r.dcs as i64));
                            rv
                        })
                        .collect(),
                ),
            );
            if let Some(m) = &s.pair_cost {
                v.set(
                    "pair_cost",
                    Value::Array(
                        m.iter()
                            .map(|row| Value::Array(row.iter().map(|&f| Value::Float(f)).collect()))
                            .collect(),
                    ),
                );
            }
            let c = &s.churn;
            let mut cv = Value::table();
            cv.set("viewers", range_value(c.viewers));
            cv.set("sources", range_value(c.sources));
            cv.set("chain_len", Value::Int(c.chain_len as i64));
            cv.set("demand_mbps", Value::Float(c.demand_mbps));
            cv.set("leaves", range_value(c.leaves));
            cv.set("joins", range_value(c.joins));
            cv.set(
                "lifetime",
                Value::Array(vec![
                    Value::Int(c.lifetime.0 as i64),
                    Value::Int(c.lifetime.1 as i64),
                ]),
            );
            cv.set("roam", Value::Float(c.roam));
            v.set("churn", cv);
            if let Some(f) = &s.failures {
                v.set("failures", failures_value(f));
            }
            if let Some(conv) = &s.converge {
                let mut cov = Value::table();
                cov.set("epsilon", Value::Float(conv.epsilon));
                cov.set("patience", Value::Int(conv.patience as i64));
                v.set("converge", cov);
            }
            if let Some(secs) = s.max_seconds {
                v.set("max_seconds", Value::Float(secs));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
name = "mini"
label = "Fig. X"
title = "a miniature sweep"

[topology]
name = "softlayer"

[workload]
kind = "sweep"
solvers = ["SOFDA", "eST"]
seeds = 2
seed = 42

[[workload.axes]]
field = "destinations"
values = [2, 4]
"#;

    #[test]
    fn parses_and_round_trips() {
        let spec = ScenarioSpec::from_toml(MINI).unwrap();
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.label, "Fig. X");
        assert_eq!(spec.topology.name, "softlayer");
        let Workload::Sweep {
            ref solvers,
            seeds,
            seed,
            ref axes,
        } = spec.workload
        else {
            panic!("expected a sweep");
        };
        assert_eq!(solvers, &["SOFDA", "eST"]);
        assert_eq!((seeds, seed), (2, 42));
        assert_eq!(axes.len(), 1);
        assert_eq!(axes[0].label, "#destinations");

        // TOML round trip is the identity.
        let rewritten = spec.to_toml();
        let again = ScenarioSpec::from_toml(&rewritten).unwrap();
        assert_eq!(spec, again, "\n{rewritten}");
        // And so is the JSON round trip.
        let json = spec.to_json();
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec, "\n{json}");
    }

    #[test]
    fn unknown_keys_are_rejected_with_context() {
        let src = MINI.replace("seeds = 2", "seeds = 2\nsede = 3");
        let err = ScenarioSpec::from_toml(&src).unwrap_err();
        assert!(
            err.to_string().contains("unknown key 'workload.sede'"),
            "{err}"
        );
        assert!(err.to_string().contains("valid keys here"), "{err}");

        let src = MINI.replace("[topology]", "[topology]\ncolour = \"blue\"");
        let err = ScenarioSpec::from_toml(&src).unwrap_err();
        assert!(
            err.to_string().contains("unknown key 'topology.colour'"),
            "{err}"
        );
    }

    #[test]
    fn out_of_range_values_are_rejected_actionably() {
        let err = ScenarioSpec::from_toml(&MINI.replace("seeds = 2", "seeds = 0")).unwrap_err();
        assert!(err.to_string().contains("'workload.seeds'"), "{err}");
        let err = ScenarioSpec::from_toml(&MINI.replace("seeds = 2", "seeds = -3")).unwrap_err();
        assert!(err.to_string().contains("non-negative"), "{err}");
        let err =
            ScenarioSpec::from_toml(&MINI.replace("values = [2, 4]", "values = []")).unwrap_err();
        assert!(
            err.to_string().contains("'values' must not be empty"),
            "{err}"
        );
        let err =
            ScenarioSpec::from_toml(&MINI.replace("\"SOFDA\", ", "\"SOFDDA\", ")).unwrap_err();
        assert!(
            err.to_string().contains("unknown solver 'SOFDDA'")
                && err.to_string().contains("SOFDA"),
            "{err}"
        );
        let err = ScenarioSpec::from_toml(&MINI.replace("name = \"softlayer\"", "name = \"sl\""))
            .unwrap_err();
        assert!(err.to_string().contains("unknown topology 'sl'"), "{err}");
        let err = ScenarioSpec::from_toml(
            &MINI.replace("field = \"destinations\"", "field = \"colour\""),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown sweep field"), "{err}");
    }

    #[test]
    fn online_spec_parses_groups_and_failures() {
        let src = r#"
name = "online-mini"

[online]
drift = 1.5
drift_policy = "cost"

[workload]
kind = "online"
seed = 7
sessions = 1

[[workload.groups]]
topology = "testbed"
requests = 4
scratch = true
churn = { sources = [1, 2], destinations = [2, 3], leaves = [0, 1], joins = [0, 1] }

[workload.failures]
every = 2
"#;
        let spec = ScenarioSpec::from_toml(src).unwrap();
        assert_eq!(spec.online.drift_policy, DriftPolicy::CostDrift);
        let Workload::Online {
            ref groups,
            ref failures,
            ..
        } = spec.workload
        else {
            panic!("expected online");
        };
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].topology.as_ref().unwrap().name, "testbed");
        assert_eq!(groups[0].churn.chain_len, 3, "default chain length");
        let f = failures.as_ref().unwrap();
        assert_eq!((f.every, f.kind.as_str(), f.count), (2, "vm", 1));
        let again = ScenarioSpec::from_toml(&spec.to_toml()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn defaults_match_engine_defaults() {
        let spec = ScenarioSpec::from_toml(
            "name = \"d\"\n[workload]\nkind = \"sweep\"\nsolvers = [\"SOFDA\"]\n",
        )
        .unwrap();
        assert_eq!(spec.params, {
            let mut p = ScenarioParams::paper_defaults();
            p.seed = spec.params.seed;
            p
        });
        assert_eq!(spec.sofda, SofdaConfig::default());
        assert_eq!(spec.online, OnlineSpec::default());
        // Default axes are the standard figure grid.
        let Workload::Sweep { ref axes, .. } = spec.workload else {
            panic!()
        };
        assert_eq!(axes.len(), 4);
        assert_eq!(axes[2].label, "#VMs");
    }

    #[test]
    fn churn_spec_compiles_to_simulator_params() {
        let c = ChurnSpec::softlayer();
        assert_eq!(c.to_params(), ChurnParams::softlayer());
        let c = ChurnSpec::cogent();
        assert_eq!(c.to_params(), ChurnParams::cogent());
    }

    const SCALE: &str = r#"
name = "scale-mini"
label = "Scale"
title = "churn at scale"

[workload]
kind = "churn-at-scale"
seed = 7
solver = "SOFDA"
groups = 12
events = 120
window = 24
emit = "events"
vms_per_dc = 2
gateway_links = 3

[[workload.regions]]
name = "us-east"
nodes = 6
dcs = 2

[[workload.regions]]
name = "eu-west"
nodes = 5
dcs = 1

[workload.churn]
viewers = [2, 4]
sources = [1, 1]
chain_len = 2
demand_mbps = 5.0
leaves = [0, 1]
joins = [0, 2]
lifetime = [5, 9]
roam = 0.5

[workload.converge]
epsilon = 0.001
patience = 4
"#;

    #[test]
    fn churn_at_scale_parses_and_round_trips() {
        let spec = ScenarioSpec::from_toml(SCALE).unwrap();
        let Workload::ChurnAtScale(ref s) = spec.workload else {
            panic!("expected churn-at-scale");
        };
        assert_eq!((s.seed, s.groups, s.events, s.window), (7, 12, 120, 24));
        assert!(s.emit_events);
        assert_eq!((s.vms_per_dc, s.gateway_links), (2, 3));
        assert_eq!(s.regions.len(), 2);
        assert_eq!(s.regions[1], RegionDef::new("eu-west", 5, 1));
        assert_eq!(s.churn.viewers, (2, 4));
        assert_eq!(s.churn.lifetime, (5, 9));
        assert_eq!(
            s.converge,
            Some(ConvergeSpec {
                epsilon: 0.001,
                patience: 4
            })
        );
        assert_eq!(s.max_seconds, None);
        assert_eq!(spec.workload.kind(), "churn-at-scale");
        assert_eq!(spec.workload.seed(), 7);

        let rewritten = spec.to_toml();
        let again = ScenarioSpec::from_toml(&rewritten).unwrap();
        assert_eq!(spec, again, "\n{rewritten}");
        let json = spec.to_json();
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec, "\n{json}");
    }

    #[test]
    fn churn_at_scale_defaults_and_validation() {
        // A bare table gets the library defaults.
        let spec = ScenarioSpec::from_toml("name = \"d\"\n[workload]\nkind = \"churn-at-scale\"\n")
            .unwrap();
        let Workload::ChurnAtScale(ref s) = spec.workload else {
            panic!()
        };
        assert_eq!((s.groups, s.events, s.window), (100, 100_000, 1000));
        assert!(!s.emit_events);
        assert_eq!(s.regions, ScaleSpec::default_regions());
        assert_eq!(s.churn, GroupChurnConfig::default());

        let err =
            ScenarioSpec::from_toml(&SCALE.replace("events = 120", "events = 0")).unwrap_err();
        assert!(err.to_string().contains("'workload.events'"), "{err}");
        let err = ScenarioSpec::from_toml(&SCALE.replace("emit = \"events\"", "emit = \"all\""))
            .unwrap_err();
        assert!(err.to_string().contains("'workload.emit'"), "{err}");
        let err = ScenarioSpec::from_toml(&SCALE.replace("nodes = 5", "nodes = 2")).unwrap_err();
        assert!(err.to_string().contains("at least 3 nodes"), "{err}");
        let err = ScenarioSpec::from_toml(&SCALE.replace("lifetime = [5, 9]", "lifetime = [9, 5]"))
            .unwrap_err();
        assert!(err.to_string().contains("lifetime"), "{err}");
        let err = ScenarioSpec::from_toml(&SCALE.replace("epsilon = 0.001", "epsilon = -1.0"))
            .unwrap_err();
        assert!(err.to_string().contains("converge.epsilon"), "{err}");
        let err = ScenarioSpec::from_toml(&SCALE.replace("roam = 0.5", "roam = 1.5")).unwrap_err();
        assert!(err.to_string().contains("roam"), "{err}");
    }

    /// `pair_cost` was a dead config path: implemented and validated in
    /// `sof_topo::RegionsParams` but unreachable from any spec. It now
    /// parses strictly, surfaces the library validators verbatim, and
    /// round-trips losslessly.
    #[test]
    fn churn_at_scale_pair_cost_parses_validates_and_round_trips() {
        let with = |matrix: &str| {
            SCALE.replace(
                "gateway_links = 3",
                &format!("gateway_links = 3\npair_cost = {matrix}"),
            )
        };

        // Default: absent means the line-distance fallback.
        let spec = ScenarioSpec::from_toml(SCALE).unwrap();
        let Workload::ChurnAtScale(ref s) = spec.workload else {
            panic!()
        };
        assert_eq!(s.pair_cost, None);

        // An explicit symmetric matrix (ints coerce to floats) parses and
        // survives both wire formats byte-for-value.
        let spec = ScenarioSpec::from_toml(&with("[[1, 2.5], [2.5, 1]]")).unwrap();
        let Workload::ChurnAtScale(ref s) = spec.workload else {
            panic!()
        };
        assert_eq!(s.pair_cost, Some(vec![vec![1.0, 2.5], vec![2.5, 1.0]]));
        let rewritten = spec.to_toml();
        assert_eq!(
            ScenarioSpec::from_toml(&rewritten).unwrap(),
            spec,
            "\n{rewritten}"
        );
        let json = spec.to_json();
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec, "\n{json}");

        // Malformed values are rejected with the exact offending path.
        let err = ScenarioSpec::from_toml(&with("3")).unwrap_err();
        assert!(err.to_string().contains("'workload.pair_cost'"), "{err}");
        let err = ScenarioSpec::from_toml(&with("[[1.0, 2.0], 7]")).unwrap_err();
        assert!(err.to_string().contains("'workload.pair_cost[1]'"), "{err}");
        let err = ScenarioSpec::from_toml(&with("[[1.0, \"x\"], [2.0, 1.0]]")).unwrap_err();
        assert!(
            err.to_string().contains("'workload.pair_cost[0][1]'"),
            "{err}"
        );

        // Shape and symmetry violations surface the `RegionsParams`
        // validator messages verbatim under the workload.regions prefix.
        let err = ScenarioSpec::from_toml(&with("[[1.0, 2.0]]")).unwrap_err();
        assert!(
            err.to_string().contains("pair_cost must be a 2×2 matrix"),
            "{err}"
        );
        let err = ScenarioSpec::from_toml(&with("[[1.0, 2.0], [3.0, 1.0]]")).unwrap_err();
        assert!(
            err.to_string().contains("pair_cost must be symmetric"),
            "{err}"
        );
        let err = ScenarioSpec::from_toml(&with("[[1.0, -2.0], [-2.0, 1.0]]")).unwrap_err();
        assert!(
            err.to_string().contains("pair_cost[0][1] must be positive"),
            "{err}"
        );
    }
}

//! Non-negative cost values with a total order.
//!
//! The SOF problem mixes link connection costs and VM setup costs, both
//! non-negative reals. [`Cost`] wraps `f64` while guaranteeing the value is
//! never NaN, which lets it implement [`Ord`] / [`Eq`] / [`Hash`] and be used
//! directly inside binary heaps and B-tree keys.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A non-negative, non-NaN cost.
///
/// # Examples
///
/// ```
/// use sof_graph::Cost;
///
/// let a = Cost::new(1.5);
/// let b = Cost::new(2.0);
/// assert!(a < b);
/// assert_eq!((a + b).value(), 3.5);
/// assert!(Cost::INFINITY > b);
/// ```
#[derive(Clone, Copy, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Cost(f64);

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost(0.0);
    /// An unreachable / infinite cost.
    pub const INFINITY: Cost = Cost(f64::INFINITY);

    /// Creates a new cost.
    ///
    /// Negative zero is normalized to positive zero so that equal costs hash
    /// equally.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or negative.
    #[inline]
    pub fn new(value: f64) -> Cost {
        assert!(!value.is_nan(), "cost must not be NaN");
        assert!(value >= 0.0, "cost must be non-negative, got {value}");
        Cost(value + 0.0)
    }

    /// Returns the underlying `f64`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns `true` when the cost is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the smaller of two costs.
    #[inline]
    pub fn min(self, other: Cost) -> Cost {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two costs.
    #[inline]
    pub fn max(self, other: Cost) -> Cost {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: returns zero instead of going negative.
    #[inline]
    pub fn saturating_sub(self, other: Cost) -> Cost {
        if self.0 > other.0 {
            Cost(self.0 - other.0)
        } else {
            Cost::ZERO
        }
    }

    /// Compares two costs up to a small relative tolerance.
    ///
    /// Useful in tests where two different summation orders of the same set
    /// of link costs must compare equal.
    pub fn approx_eq(self, other: Cost) -> bool {
        if self.0 == other.0 {
            return true;
        }
        if !self.is_finite() || !other.is_finite() {
            return false;
        }
        let scale = self.0.abs().max(other.0.abs()).max(1.0);
        (self.0 - other.0).abs() <= 1e-6 * scale
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cost({})", self.0)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*}", precision, self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl PartialEq for Cost {
    #[inline]
    fn eq(&self, other: &Cost) -> bool {
        self.0 == other.0
    }
}

impl Eq for Cost {}

impl PartialOrd for Cost {
    #[inline]
    fn partial_cmp(&self, other: &Cost) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    #[inline]
    fn cmp(&self, other: &Cost) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for Cost {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl From<f64> for Cost {
    fn from(value: f64) -> Cost {
        Cost::new(value)
    }
}

impl From<u32> for Cost {
    fn from(value: u32) -> Cost {
        Cost(f64::from(value))
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sub for Cost {
    type Output = Cost;
    /// # Panics
    ///
    /// Panics (in debug builds) if the result would be negative.
    #[inline]
    fn sub(self, rhs: Cost) -> Cost {
        let out = self.0 - rhs.0;
        debug_assert!(out >= -1e-9, "cost subtraction went negative: {out}");
        Cost(out.max(0.0))
    }
}

impl SubAssign for Cost {
    #[inline]
    fn sub_assign(&mut self, rhs: Cost) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    #[inline]
    fn mul(self, rhs: f64) -> Cost {
        Cost::new(self.0 * rhs)
    }
}

impl Div<f64> for Cost {
    type Output = Cost;
    #[inline]
    fn div(self, rhs: f64) -> Cost {
        Cost::new(self.0 / rhs)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Cost> for Cost {
    fn sum<I: Iterator<Item = &'a Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let mut v = [Cost::new(3.0), Cost::ZERO, Cost::INFINITY, Cost::new(1.0)];
        v.sort();
        assert_eq!(v[0], Cost::ZERO);
        assert_eq!(v[1], Cost::new(1.0));
        assert_eq!(v[2], Cost::new(3.0));
        assert_eq!(v[3], Cost::INFINITY);
    }

    #[test]
    fn arithmetic() {
        let a = Cost::new(2.5);
        let b = Cost::new(1.5);
        assert_eq!(a + b, Cost::new(4.0));
        assert_eq!(a - b, Cost::new(1.0));
        assert_eq!(a * 2.0, Cost::new(5.0));
        assert_eq!(a / 2.0, Cost::new(1.25));
        assert_eq!([a, b].iter().sum::<Cost>(), Cost::new(4.0));
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Cost::new(1.0).saturating_sub(Cost::new(3.0)), Cost::ZERO);
        assert_eq!(
            Cost::new(3.0).saturating_sub(Cost::new(1.0)),
            Cost::new(2.0)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_panics() {
        let _ = Cost::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_cost_panics() {
        let _ = Cost::new(f64::NAN);
    }

    #[test]
    fn negative_zero_normalized() {
        assert_eq!(Cost::new(-0.0), Cost::ZERO);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        Cost::new(-0.0).hash(&mut h1);
        Cost::ZERO.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        let a = Cost::new(0.1 + 0.2);
        let b = Cost::new(0.3);
        assert!(a.approx_eq(b));
        assert!(!Cost::new(1.0).approx_eq(Cost::new(1.1)));
        assert!(Cost::INFINITY.approx_eq(Cost::INFINITY));
        assert!(!Cost::INFINITY.approx_eq(Cost::new(1.0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Cost::new(1.25)), "1.25");
        assert_eq!(format!("{:.1}", Cost::new(1.25)), "1.2");
        assert_eq!(format!("{:?}", Cost::new(2.0)), "Cost(2)");
    }
}

//! A small self-contained document model with TOML and JSON front ends.
//!
//! The build environment vendors a no-op `serde` stand-in (see
//! `vendor/serde`), so the spec layer carries its own parsing and
//! serialization: a [`Value`] tree (insertion-ordered tables, so
//! serialization is deterministic), a TOML-subset reader/writer covering
//! everything scenario specs use, and a JSON reader/writer for `.json`
//! specs and `RunReport` JSON-lines output.
//!
//! The TOML subset: `[table]` / `[[array-of-tables]]` headers with dotted
//! paths, `key = value` pairs (bare or quoted keys, dotted keys), basic
//! strings with escapes, integers, floats, booleans, (multi-line) arrays,
//! inline tables, and `#` comments.

use std::fmt;

/// A dynamically-typed spec value.
///
/// Equality is structural: tables compare as key→value maps (order does
/// not matter, since the TOML writer groups scalars before sections),
/// everything else compares exactly.
#[derive(Clone, Debug)]
pub enum Value {
    /// JSON `null` (never produced by specs; spec readers reject it with
    /// a type error).
    Null,
    /// A string.
    Str(String),
    /// A 64-bit integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Array(Vec<Value>),
    /// A table with insertion-ordered keys.
    Table(Vec<(String, Value)>),
}

impl Value {
    /// An empty table.
    pub fn table() -> Value {
        Value::Table(Vec::new())
    }

    /// The human name of this value's type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }

    /// Looks a key up in a table value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Table(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inserts (or replaces) a key in a table value.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not a table.
    pub fn set(&mut self, key: &str, value: Value) {
        let Value::Table(entries) = self else {
            panic!("Value::set on a {}", self.type_name());
        };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, slot)) => *slot = value,
            None => entries.push((key.to_string(), value)),
        }
    }

    /// The numeric value of an integer or float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Table(a), Value::Table(b)) => {
                a.len() == b.len() && a.iter().all(|(k, v)| other.get(k).is_some_and(|w| v == w))
            }
            _ => false,
        }
    }
}

/// A parse error with 1-based line information.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending construct (0 = end of input).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

// ---------------------------------------------------------------------------
// TOML front end
// ---------------------------------------------------------------------------

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Scanner<'a> {
        Scanner {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Skips spaces and tabs (not newlines).
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, newlines and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.pos += 1;
                }
                Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// Consumes to end-of-line, requiring only trivia remains.
    fn expect_line_end(&mut self) -> Result<(), ParseError> {
        self.skip_inline_ws();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.pos += 1;
            }
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(b'\r') => {
                self.pos += 1;
                match self.peek() {
                    Some(b'\n') => {
                        self.bump();
                        Ok(())
                    }
                    _ => err(self.line, "stray carriage return"),
                }
            }
            Some(c) => err(
                self.line,
                format!("unexpected character '{}' after value", c as char),
            ),
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, ParseError> {
        let start_line = self.line;
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return err(start_line, "unterminated string"),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| (c as char).to_digit(16))
                                .ok_or_else(|| ParseError {
                                    line: start_line,
                                    message: "invalid \\u escape (need 4 hex digits)".into(),
                                })?;
                            code = code * 16 + d;
                        }
                        s.push(char::from_u32(code).ok_or_else(|| ParseError {
                            line: start_line,
                            message: format!("\\u{code:04x} is not a scalar value"),
                        })?);
                    }
                    other => {
                        return err(
                            start_line,
                            format!(
                                "unsupported escape '\\{}'",
                                other.map(|c| c as char).unwrap_or(' ')
                            ),
                        )
                    }
                },
                Some(c) if c < 0x80 => s.push(c as char),
                Some(first) => {
                    // Re-decode the UTF-8 sequence we just stepped into.
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let from = self.pos - 1;
                    let chunk = self.src.get(from..from + len).ok_or_else(|| ParseError {
                        line: start_line,
                        message: "truncated UTF-8 sequence".into(),
                    })?;
                    let text = std::str::from_utf8(chunk).map_err(|_| ParseError {
                        line: start_line,
                        message: "invalid UTF-8 in string".into(),
                    })?;
                    s.push_str(text);
                    self.pos = from + len;
                }
            }
        }
    }

    fn parse_bare_key(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return err(
                self.line,
                format!(
                    "expected a key, found '{}'",
                    self.peek().map(|c| c as char).unwrap_or(' ')
                ),
            );
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("bare keys are ASCII")
            .to_string())
    }

    fn parse_key(&mut self) -> Result<String, ParseError> {
        if self.peek() == Some(b'"') {
            self.parse_basic_string()
        } else {
            self.parse_bare_key()
        }
    }

    /// Parses `a.b.c` (each segment bare or quoted).
    fn parse_dotted_key(&mut self) -> Result<Vec<String>, ParseError> {
        let mut path = vec![self.parse_key()?];
        loop {
            self.skip_inline_ws();
            if self.peek() == Some(b'.') {
                self.pos += 1;
                self.skip_inline_ws();
                path.push(self.parse_key()?);
            } else {
                return Ok(path);
            }
        }
    }

    fn parse_number_or_keyword(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric()
            || matches!(c, b'+' | b'-' | b'.' | b'_'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.src[start..self.pos]).expect("scalar is ASCII");
        match raw {
            "" => err(self.line, "expected a value"),
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => {
                let clean = raw.replace('_', "");
                if !clean.contains(['.', 'e', 'E']) {
                    if let Ok(i) = clean.parse::<i64>() {
                        return Ok(Value::Int(i));
                    }
                }
                match clean.parse::<f64>() {
                    Ok(f) if f.is_finite() => Ok(Value::Float(f)),
                    _ => err(self.line, format!("'{raw}' is not a number")),
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_basic_string()?)),
            Some(b'[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    if self.peek() == Some(b']') {
                        self.bump();
                        return Ok(Value::Array(items));
                    }
                    items.push(self.parse_value()?);
                    self.skip_trivia();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b']') => {}
                        _ => return err(self.line, "expected ',' or ']' in array"),
                    }
                }
            }
            Some(b'{') => {
                self.bump();
                let mut table = Value::table();
                self.skip_inline_ws();
                if self.peek() == Some(b'}') {
                    self.bump();
                    return Ok(table);
                }
                loop {
                    self.skip_inline_ws();
                    let key = self.parse_key()?;
                    self.skip_inline_ws();
                    if self.bump() != Some(b'=') {
                        return err(self.line, format!("expected '=' after key '{key}'"));
                    }
                    self.skip_inline_ws();
                    if table.get(&key).is_some() {
                        return err(self.line, format!("duplicate key '{key}' in inline table"));
                    }
                    let value = self.parse_value()?;
                    table.set(&key, value);
                    self.skip_inline_ws();
                    match self.bump() {
                        Some(b',') => {}
                        Some(b'}') => return Ok(table),
                        _ => return err(self.line, "expected ',' or '}' in inline table"),
                    }
                }
            }
            _ => self.parse_number_or_keyword(),
        }
    }
}

/// Navigates (creating as needed) to the table at `path`, descending into
/// the **last** element of any array-of-tables on the way.
fn descend<'v>(
    root: &'v mut Value,
    path: &[String],
    line: usize,
) -> Result<&'v mut Value, ParseError> {
    let mut cur = root;
    for seg in path {
        if cur.get(seg).is_none() {
            cur.set(seg, Value::table());
        }
        let Value::Table(entries) = cur else {
            unreachable!("descend always walks tables");
        };
        let next = entries
            .iter_mut()
            .find(|(k, _)| k == seg)
            .map(|(_, v)| v)
            .expect("just ensured");
        cur = match next {
            Value::Table(_) => next,
            Value::Array(items) => match items.last_mut() {
                Some(last @ Value::Table(_)) => last,
                _ => return err(line, format!("'{seg}' is not a table of tables")),
            },
            other => {
                return err(
                    line,
                    format!("'{seg}' is a {}, not a table", other.type_name()),
                )
            }
        };
    }
    Ok(cur)
}

/// Parses a TOML document into a [`Value::Table`].
///
/// # Errors
///
/// A [`ParseError`] with the 1-based line of the offending construct.
pub fn parse_toml(src: &str) -> Result<Value, ParseError> {
    let mut root = Value::table();
    let mut scanner = Scanner::new(src);
    // Path of the currently open [table] / [[array-of-tables]] header.
    let mut current: Vec<String> = Vec::new();
    loop {
        scanner.skip_trivia();
        let Some(c) = scanner.peek() else {
            return Ok(root);
        };
        let line = scanner.line;
        if c == b'[' {
            scanner.bump();
            let is_array = scanner.peek() == Some(b'[');
            if is_array {
                scanner.bump();
            }
            scanner.skip_inline_ws();
            let path = scanner.parse_dotted_key()?;
            scanner.skip_inline_ws();
            if scanner.bump() != Some(b']') || (is_array && scanner.bump() != Some(b']')) {
                return err(line, "unterminated table header");
            }
            scanner.expect_line_end()?;
            if is_array {
                let (last, parents) = path.split_last().expect("parse_dotted_key is non-empty");
                let parent = descend(&mut root, parents, line)?;
                match parent.get(last) {
                    None => parent.set(last, Value::Array(vec![Value::table()])),
                    Some(Value::Array(_)) => {
                        let Value::Table(entries) = parent else {
                            unreachable!()
                        };
                        let slot = entries
                            .iter_mut()
                            .find(|(k, _)| k == last)
                            .map(|(_, v)| v)
                            .expect("checked above");
                        let Value::Array(items) = slot else {
                            unreachable!()
                        };
                        items.push(Value::table());
                    }
                    Some(other) => {
                        return err(
                            line,
                            format!("[[{last}]] conflicts with existing {}", other.type_name()),
                        )
                    }
                }
            } else {
                // Ensure the path exists and is a table; re-opening one is
                // allowed (per-key duplicates are still rejected below).
                descend(&mut root, &path, line)?;
            }
            current = path;
            continue;
        }
        // key = value
        let path = scanner.parse_dotted_key()?;
        scanner.skip_inline_ws();
        if scanner.bump() != Some(b'=') {
            return err(line, format!("expected '=' after key '{}'", path.join(".")));
        }
        scanner.skip_inline_ws();
        let value = scanner.parse_value()?;
        scanner.expect_line_end()?;
        let mut full = current.clone();
        full.extend(path.iter().cloned());
        let (last, parents) = full.split_last().expect("non-empty key");
        let target = descend(&mut root, parents, line)?;
        if target.get(last).is_some() {
            return err(line, format!("duplicate key '{last}'"));
        }
        target.set(last, value);
    }
}

/// Serializes a [`Value::Table`] as TOML. Scalar and array entries come
/// first, then sub-tables as `[path]` sections and arrays of tables as
/// `[[path]]` sections — the same shape [`parse_toml`] accepts, so
/// `parse(write(v)) == v` for any table-rooted value (see the module
/// tests).
///
/// # Panics
///
/// Panics when `value` is not a table.
pub fn write_toml(value: &Value) -> String {
    let Value::Table(_) = value else {
        panic!("write_toml needs a table root, got {}", value.type_name());
    };
    let mut out = String::new();
    write_toml_table(value, &mut Vec::new(), &mut out);
    out
}

fn is_table(v: &Value) -> bool {
    matches!(v, Value::Table(_))
}

fn is_table_array(v: &Value) -> bool {
    matches!(v, Value::Array(items) if !items.is_empty() && items.iter().all(is_table))
}

fn write_toml_table(table: &Value, path: &mut Vec<String>, out: &mut String) {
    let Value::Table(entries) = table else {
        unreachable!()
    };
    for (k, v) in entries {
        if !is_table(v) && !is_table_array(v) {
            out.push_str(&format!("{} = {}\n", toml_key(k), toml_scalar(v)));
        }
    }
    for (k, v) in entries {
        if is_table(v) {
            path.push(k.clone());
            out.push_str(&format!("\n[{}]\n", toml_path(path)));
            write_toml_table(v, path, out);
            path.pop();
        } else if is_table_array(v) {
            let Value::Array(items) = v else {
                unreachable!()
            };
            path.push(k.clone());
            for item in items {
                out.push_str(&format!("\n[[{}]]\n", toml_path(path)));
                write_toml_table(item, path, out);
            }
            path.pop();
        }
    }
}

fn toml_key(k: &str) -> String {
    if !k.is_empty()
        && k.bytes()
            .all(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
    {
        k.to_string()
    } else {
        quote_string(k)
    }
}

fn toml_path(path: &[String]) -> String {
    path.iter()
        .map(|s| toml_key(s))
        .collect::<Vec<_>>()
        .join(".")
}

fn toml_scalar(v: &Value) -> String {
    match v {
        Value::Null => unreachable!("specs never contain null"),
        Value::Str(s) => quote_string(s),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Bool(b) => b.to_string(),
        Value::Array(items) => format!(
            "[{}]",
            items.iter().map(toml_scalar).collect::<Vec<_>>().join(", ")
        ),
        Value::Table(entries) => format!(
            "{{ {} }}",
            entries
                .iter()
                .map(|(k, v)| format!("{} = {}", toml_key(k), toml_scalar(v)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

// ---------------------------------------------------------------------------
// JSON front end
// ---------------------------------------------------------------------------

/// Parses a JSON document into a [`Value`]. Objects keep key order.
///
/// # Errors
///
/// A [`ParseError`] with the 1-based line of the offending construct.
pub fn parse_json(src: &str) -> Result<Value, ParseError> {
    let mut scanner = Scanner::new(src);
    scanner.skip_trivia();
    let v = parse_json_value(&mut scanner)?;
    scanner.skip_trivia();
    match scanner.peek() {
        None => Ok(v),
        Some(c) => err(
            scanner.line,
            format!("trailing content after document: '{}'", c as char),
        ),
    }
}

fn parse_json_value(s: &mut Scanner<'_>) -> Result<Value, ParseError> {
    match s.peek() {
        Some(b'"') => Ok(Value::Str(s.parse_basic_string()?)),
        Some(b'{') => {
            s.bump();
            let mut table = Value::table();
            s.skip_trivia();
            if s.peek() == Some(b'}') {
                s.bump();
                return Ok(table);
            }
            loop {
                s.skip_trivia();
                if s.peek() != Some(b'"') {
                    return err(s.line, "expected a quoted object key");
                }
                let key = s.parse_basic_string()?;
                s.skip_trivia();
                if s.bump() != Some(b':') {
                    return err(s.line, format!("expected ':' after key \"{key}\""));
                }
                s.skip_trivia();
                if table.get(&key).is_some() {
                    return err(s.line, format!("duplicate key \"{key}\""));
                }
                let value = parse_json_value(s)?;
                table.set(&key, value);
                s.skip_trivia();
                match s.bump() {
                    Some(b',') => {}
                    Some(b'}') => return Ok(table),
                    _ => return err(s.line, "expected ',' or '}' in object"),
                }
            }
        }
        Some(b'[') => {
            s.bump();
            let mut items = Vec::new();
            s.skip_trivia();
            if s.peek() == Some(b']') {
                s.bump();
                return Ok(Value::Array(items));
            }
            loop {
                s.skip_trivia();
                items.push(parse_json_value(s)?);
                s.skip_trivia();
                match s.bump() {
                    Some(b',') => {}
                    Some(b']') => return Ok(Value::Array(items)),
                    _ => return err(s.line, "expected ',' or ']' in array"),
                }
            }
        }
        Some(b'n') => parse_json_keyword(s, "null", Value::Null),
        Some(b't') => parse_json_keyword(s, "true", Value::Bool(true)),
        Some(b'f') => parse_json_keyword(s, "false", Value::Bool(false)),
        _ => s.parse_number_or_keyword(),
    }
}

fn parse_json_keyword(s: &mut Scanner<'_>, word: &str, v: Value) -> Result<Value, ParseError> {
    for expected in word.bytes() {
        if s.bump() != Some(expected) {
            return err(s.line, format!("invalid literal (expected '{word}')"));
        }
    }
    Ok(v)
}

/// Serializes any [`Value`] as compact JSON (no insignificant whitespace,
/// keys in insertion order — deterministic for a given value).
pub fn write_json(value: &Value) -> String {
    let mut out = String::new();
    write_json_value(value, &mut out);
    out
}

fn write_json_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Str(s) => out.push_str(&quote_string(s)),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => out.push_str(&json_f64(*f)),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_value(item, out);
            }
            out.push(']');
        }
        Value::Table(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&quote_string(k));
                out.push(':');
                write_json_value(v, out);
            }
            out.push('}');
        }
    }
}

/// Formats a float as JSON: shortest round-trip representation, with the
/// guarantee that the result is valid JSON (finite values only).
pub fn json_f64(f: f64) -> String {
    debug_assert!(f.is_finite(), "non-finite values must be emitted as null");
    let s = format!("{f:?}");
    // Rust prints integral floats as "1.0" — already valid JSON.
    s
}

/// Quotes a string with JSON/TOML basic-string escaping.
pub fn quote_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_tables_arrays_and_scalars_round_trip() {
        let src = r#"
# top comment
name = "fig8"
count = 5
ratio = 2.5
on = true
values = [2, 8, 14]   # inline comment

[topology]
name = "softlayer"

[workload]
kind = "sweep"
solvers = ["SOFDA", "eST"]

[[workload.axes]]
field = "sources"
values = [
    2,
    8,
]

[[workload.axes]]
field = "destinations"
values = [2, 4]
churn = { sources = [8, 12], demand = 5.0 }
"#;
        let v = parse_toml(src).unwrap();
        assert_eq!(v.get("name"), Some(&Value::Str("fig8".into())));
        assert_eq!(v.get("count"), Some(&Value::Int(5)));
        assert_eq!(v.get("ratio"), Some(&Value::Float(2.5)));
        assert_eq!(v.get("on"), Some(&Value::Bool(true)));
        let axes = v.get("workload").unwrap().get("axes").unwrap();
        let Value::Array(axes) = axes else {
            panic!("axes should be an array")
        };
        assert_eq!(axes.len(), 2);
        assert_eq!(
            axes[1].get("field"),
            Some(&Value::Str("destinations".into()))
        );
        let churn = axes[1].get("churn").unwrap();
        assert_eq!(
            churn.get("sources"),
            Some(&Value::Array(vec![Value::Int(8), Value::Int(12)]))
        );
        // Round trip through the writer.
        let rewritten = write_toml(&v);
        assert_eq!(parse_toml(&rewritten).unwrap(), v, "\n{rewritten}");
    }

    #[test]
    fn toml_errors_carry_line_numbers() {
        let err = parse_toml("a = 1\nb = \n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_toml("a = 1\na = 2\n").unwrap_err();
        assert!(err.to_string().contains("duplicate key 'a'"));
        let err = parse_toml("x = \"unterminated\n").unwrap_err();
        assert!(err.to_string().contains("unterminated string"));
        let err = parse_toml("[t\n").unwrap_err();
        assert!(err.to_string().contains("unterminated table header"));
    }

    #[test]
    fn dotted_keys_and_quoted_keys() {
        let v = parse_toml("a.b = 1\n\"odd key\" = 2\n").unwrap();
        assert_eq!(v.get("a").unwrap().get("b"), Some(&Value::Int(1)));
        assert_eq!(v.get("odd key"), Some(&Value::Int(2)));
        let out = write_toml(&v);
        assert_eq!(parse_toml(&out).unwrap(), v);
    }

    #[test]
    fn json_round_trips_through_value() {
        let src = r#"{"name":"fig8","seeds":5,"ratio":0.5,"on":false,
                      "axes":[{"field":"sources","values":[2,8]}],"empty":{},"none":[]}"#;
        let v = parse_json(src).unwrap();
        assert_eq!(v.get("seeds"), Some(&Value::Int(5)));
        let json = write_json(&v);
        assert_eq!(parse_json(&json).unwrap(), v);
        // And TOML and JSON agree on the same tree (minus the empty table,
        // which TOML writes as a section).
        let toml = write_toml(&v);
        assert_eq!(parse_toml(&toml).unwrap(), v, "\n{toml}");
    }

    #[test]
    fn json_rejects_bad_documents() {
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1 2]").is_err());
        // null parses as JSON but spec readers reject it by type.
        assert_eq!(
            parse_json("{\"a\":null}").unwrap().get("a"),
            Some(&Value::Null)
        );
        let err = parse_json("{\"a\":1}{").unwrap_err();
        assert!(err.to_string().contains("trailing content"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::Table(vec![(
            "s".into(),
            Value::Str("line\nbreak \"quote\" tab\t \\ λ".into()),
        )]);
        assert_eq!(parse_json(&write_json(&v)).unwrap(), v);
        assert_eq!(parse_toml(&write_toml(&v)).unwrap(), v);
    }

    #[test]
    fn floats_write_shortest_round_trip_form() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.05), "0.05");
        assert_eq!(json_f64(123.45), "123.45");
    }
}

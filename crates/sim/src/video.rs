//! Video player QoE model: startup latency and rebuffering time, driven by
//! the flow-level rates (Table II's metrics).

use crate::{max_min_rates, Flow};
use sof_graph::EdgeId;
use std::collections::HashMap;

/// Player / stream parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlayerConfig {
    /// Video duration in seconds (the paper's test clip: 137 s).
    pub duration_s: f64,
    /// Stream bitrate in Mbps (paper: 8 Mbps H.264).
    pub bitrate_mbps: f64,
    /// Content seconds buffered before playback starts.
    pub startup_buffer_s: f64,
    /// Content seconds buffered before playback resumes after a stall.
    pub resume_buffer_s: f64,
}

impl Default for PlayerConfig {
    fn default() -> PlayerConfig {
        PlayerConfig {
            duration_s: 137.0,
            bitrate_mbps: 8.0,
            startup_buffer_s: 2.0,
            resume_buffer_s: 1.0,
        }
    }
}

/// Environment profile: fixed control-plane/session overhead added to the
/// startup latency ("Ours" HP testbed vs Emulab in Table II).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnvironmentProfile {
    /// Name for reports.
    pub name: &'static str,
    /// Constant startup overhead (rule installation, RTSP handshake…).
    pub startup_overhead_s: f64,
}

impl EnvironmentProfile {
    /// The HP-switch hardware testbed ("Ours" column).
    pub fn hardware_testbed() -> EnvironmentProfile {
        EnvironmentProfile {
            name: "ours",
            startup_overhead_s: 3.0,
        }
    }

    /// The Emulab deployment.
    pub fn emulab() -> EnvironmentProfile {
        EnvironmentProfile {
            name: "emulab",
            startup_overhead_s: 1.5,
        }
    }
}

/// Per-viewer QoE outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Qoe {
    /// Seconds from request to first frame.
    pub startup_latency_s: f64,
    /// Total stall time during playback.
    pub rebuffering_s: f64,
}

/// One viewer's download session.
#[derive(Clone, Debug)]
pub struct Session {
    /// The links this viewer's stream traverses.
    pub links: Vec<EdgeId>,
}

/// Simulates all sessions concurrently (discrete events at download
/// completions, max-min fair rates in between) and returns each viewer's
/// QoE.
///
/// Sessions start at `t = 0`; each downloads `duration · bitrate` megabits,
/// capped at the bitrate ×\u{00a0}`overdrive` (players rarely fetch much faster
/// than real time; 1.25 by default in the caller).
pub fn simulate_sessions(
    sessions: &[Session],
    capacities: &HashMap<EdgeId, f64>,
    player: &PlayerConfig,
    env: &EnvironmentProfile,
    overdrive: f64,
) -> Vec<Qoe> {
    let n = sessions.len();
    let total_content = player.duration_s; // in content-seconds
    let mut downloaded = vec![0.0f64; n]; // content-seconds received
    let mut done = vec![false; n];
    // Piecewise download curves: (time, downloaded) breakpoints per session.
    let mut curves: Vec<Vec<(f64, f64)>> = vec![vec![(0.0, 0.0)]; n];
    let mut t = 0.0f64;
    // Quasi-static loop: recompute rates whenever a session completes.
    while done.iter().any(|&d| !d) {
        let flows: Vec<Flow> = sessions
            .iter()
            .enumerate()
            .map(|(i, s)| Flow {
                links: if done[i] { vec![] } else { s.links.clone() },
                rate_cap: Some(if done[i] {
                    0.0
                } else {
                    player.bitrate_mbps * overdrive
                }),
            })
            .collect();
        let rates = max_min_rates(&flows, capacities);
        // Content-seconds per wall second.
        let speed: Vec<f64> = rates.iter().map(|r| r / player.bitrate_mbps).collect();
        // Next completion.
        let mut dt = f64::INFINITY;
        for i in 0..n {
            if !done[i] && speed[i] > 1e-12 {
                dt = dt.min((total_content - downloaded[i]) / speed[i]);
            }
        }
        if !dt.is_finite() {
            break; // starved sessions never finish; curves stay flat
        }
        t += dt;
        for i in 0..n {
            if !done[i] {
                downloaded[i] = (downloaded[i] + speed[i] * dt).min(total_content);
                curves[i].push((t, downloaded[i]));
                if downloaded[i] >= total_content - 1e-9 {
                    done[i] = true;
                }
            }
        }
    }
    curves
        .iter()
        .enumerate()
        .map(|(i, curve)| playback_qoe(curve, player, env, done[i]))
        .collect()
}

/// Replays the player against a piecewise-linear download curve.
fn playback_qoe(
    curve: &[(f64, f64)],
    player: &PlayerConfig,
    env: &EnvironmentProfile,
    completed: bool,
) -> Qoe {
    if !completed {
        // Starved: never starts or stalls forever; report sentinel values.
        return Qoe {
            startup_latency_s: f64::INFINITY,
            rebuffering_s: f64::INFINITY,
        };
    }
    let downloaded_at = |time: f64| -> f64 {
        // Linear interpolation over breakpoints.
        let mut prev = curve[0];
        for &(bt, bd) in curve.iter().skip(1) {
            if time <= bt {
                let frac = if bt > prev.0 {
                    (time - prev.0) / (bt - prev.0)
                } else {
                    1.0
                };
                return prev.1 + frac * (bd - prev.1);
            }
            prev = (bt, bd);
        }
        prev.1
    };
    let time_when_downloaded = |amount: f64| -> f64 {
        let mut prev = curve[0];
        for &(bt, bd) in curve.iter().skip(1) {
            if bd >= amount - 1e-12 {
                let span = bd - prev.1;
                let frac = if span > 1e-15 {
                    (amount - prev.1) / span
                } else {
                    0.0
                };
                return prev.0 + frac * (bt - prev.0);
            }
            prev = (bt, bd);
        }
        prev.0
    };
    let start_play = time_when_downloaded(player.startup_buffer_s.min(player.duration_s));
    let startup_latency = start_play + env.startup_overhead_s;
    // Play through, accounting stalls.
    let mut played = 0.0f64;
    let mut clock = start_play;
    let mut stalled = 0.0f64;
    while played < player.duration_s - 1e-9 {
        let buffer = downloaded_at(clock) - played;
        if buffer > 1e-9 {
            // Play until the buffer would empty or the video ends.
            // The buffer drains at 1 − fill_rate; just step to the next
            // curve breakpoint or depletion, whichever first.
            let next_bp = curve
                .iter()
                .map(|&(bt, _)| bt)
                .find(|&bt| bt > clock + 1e-12);
            let deplete = clock + buffer; // worst case: no further download
            let step_to = match next_bp {
                Some(bp) => bp.min(deplete),
                None => deplete,
            };
            let dt = (step_to - clock).max(1e-9);
            let fill = downloaded_at(clock + dt) - downloaded_at(clock);
            // Playback consumes min(dt, available).
            let consumable = (buffer + fill).min(dt);
            played = (played + consumable).min(player.duration_s);
            clock += dt;
        } else {
            // Stalled: wait for resume_buffer_s more content (or the end).
            let target = (played + player.resume_buffer_s).min(player.duration_s);
            let resume_at = time_when_downloaded(target);
            if resume_at <= clock + 1e-12 {
                // Curve already past target (numerical) — nudge forward.
                clock += 1e-9;
                continue;
            }
            stalled += resume_at - clock;
            clock = resume_at;
        }
    }
    Qoe {
        startup_latency_s: startup_latency,
        rebuffering_s: stalled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(pairs: &[(usize, f64)]) -> HashMap<EdgeId, f64> {
        pairs.iter().map(|&(i, c)| (EdgeId::new(i), c)).collect()
    }

    #[test]
    fn fast_link_means_no_rebuffering() {
        let sessions = vec![Session {
            links: vec![EdgeId::new(0)],
        }];
        let player = PlayerConfig::default();
        let qoe = simulate_sessions(
            &sessions,
            &caps(&[(0, 100.0)]),
            &player,
            &EnvironmentProfile::emulab(),
            1.25,
        );
        assert!(qoe[0].rebuffering_s < 1e-6);
        // Startup: 2 s of content at 1.25× real time + 1.5 s overhead.
        let expect = 2.0 / 1.25 + 1.5;
        assert!((qoe[0].startup_latency_s - expect).abs() < 1e-6);
    }

    #[test]
    fn slow_link_rebuffers_proportionally() {
        let sessions = vec![Session {
            links: vec![EdgeId::new(0)],
        }];
        let player = PlayerConfig::default();
        // 4 Mbps for an 8 Mbps stream: download takes 2× duration.
        let qoe = simulate_sessions(
            &sessions,
            &caps(&[(0, 4.0)]),
            &player,
            &EnvironmentProfile::emulab(),
            1.25,
        );
        // Total wall time to play = download time (274 s); playback time =
        // 137 s; so stalls ≈ 137 s minus the head start.
        assert!(qoe[0].rebuffering_s > 100.0);
        assert!(qoe[0].rebuffering_s < 140.0);
    }

    #[test]
    fn shared_bottleneck_hurts_both() {
        let sessions = vec![
            Session {
                links: vec![EdgeId::new(0)],
            },
            Session {
                links: vec![EdgeId::new(0)],
            },
        ];
        let player = PlayerConfig::default();
        let alone = simulate_sessions(
            &sessions[..1],
            &caps(&[(0, 9.0)]),
            &player,
            &EnvironmentProfile::emulab(),
            1.25,
        );
        let together = simulate_sessions(
            &sessions,
            &caps(&[(0, 9.0)]),
            &player,
            &EnvironmentProfile::emulab(),
            1.25,
        );
        assert!(together[0].rebuffering_s > alone[0].rebuffering_s);
        assert!(together[1].rebuffering_s > 0.0);
    }

    #[test]
    fn environments_differ_only_in_overhead() {
        let sessions = vec![Session {
            links: vec![EdgeId::new(0)],
        }];
        let player = PlayerConfig::default();
        let hw = simulate_sessions(
            &sessions,
            &caps(&[(0, 50.0)]),
            &player,
            &EnvironmentProfile::hardware_testbed(),
            1.25,
        );
        let em = simulate_sessions(
            &sessions,
            &caps(&[(0, 50.0)]),
            &player,
            &EnvironmentProfile::emulab(),
            1.25,
        );
        let diff = hw[0].startup_latency_s - em[0].startup_latency_s;
        assert!((diff - 1.5).abs() < 1e-9);
        assert_eq!(hw[0].rebuffering_s, em[0].rebuffering_s);
    }
}

//! A minimal blocking HTTP/1.1 client for the daemon's wire API — used by
//! the integration tests, the CI smoke check, and `sof serve-bench`.
//!
//! One [`Client`] holds one keep-alive connection and reconnects
//! transparently when the server closed it (e.g. after an error response
//! or a shutdown race).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A keep-alive connection to one daemon.
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl Client {
    /// A client for the daemon at `addr`. No connection is opened until
    /// the first request.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(10),
            stream: None,
        }
    }

    /// Replaces the per-request socket timeout (default 10 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    fn connect(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just set"))
    }

    fn try_request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let addr = self.addr;
        let stream = self.connect()?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        let (status, body, close) = read_response(stream)?;
        if close {
            self.stream = None;
        }
        Ok((status, body))
    }

    /// Issues one request and returns `(status, body)`. Retries once on a
    /// fresh connection when the kept-alive one turns out to be dead.
    ///
    /// # Errors
    ///
    /// The final connection or protocol failure.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let retry = self.stream.is_some();
        match self.try_request(method, path, body) {
            Ok(r) => Ok(r),
            Err(e) => {
                self.stream = None;
                if retry {
                    self.try_request(method, path, body)
                } else {
                    Err(e)
                }
            }
        }
    }
}

/// Reads one `Content-Length`-framed response; the flag reports whether
/// the server announced `Connection: close`.
fn read_response(stream: &mut TcpStream) -> io::Result<(u16, String, bool)> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if stream.read(&mut byte)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        head.push(byte[0]);
        if head.len() > 64 * 1024 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response head too large",
            ));
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line '{status_line}'"),
            )
        })?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        match name.to_ascii_lowercase().as_str() {
            "content-length" => content_length = value.trim().parse().unwrap_or(0),
            "connection" => close = value.trim().eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    let body = String::from_utf8_lossy(&body).trim_end().to_string();
    Ok((status, body, close))
}

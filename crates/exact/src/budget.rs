//! Branch-and-bound budget policy and the [`Solver`]-trait adapter for the
//! exact solver.
//!
//! The Dreyfus–Wagner relaxation inside [`solve_exact`](crate::solve_exact)
//! is `O(3^|D|)`, so the sustainable node budget shrinks as the destination
//! count grows. This policy used to be hard-coded in the benchmark harness;
//! it now lives next to the solver it throttles.

use crate::solve_exact;
use sof_core::{SofInstance, SofdaConfig, SolveError, SolveOutcome, SolveStats, Solver};

/// A branch-and-bound node budget for [`solve_exact`](crate::solve_exact).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactBudget {
    /// Maximum branch-and-bound nodes to expand.
    pub node_budget: usize,
}

impl ExactBudget {
    /// Destination counts past this are infeasible at paper-scale cost
    /// ([`ExactBudget::auto`] returns `None`).
    pub const MAX_DESTINATIONS: usize = 10;

    /// Creates an explicit budget.
    pub fn new(node_budget: usize) -> ExactBudget {
        ExactBudget { node_budget }
    }

    /// The evaluation's budget schedule: scale the node budget down as
    /// `|D|` grows to keep the "CPLEX" substitute at paper-scale cost (the
    /// incumbent is SOFDA-seeded, so `cost ≤ SOFDA` holds at any budget).
    ///
    /// # Examples
    ///
    /// ```
    /// use sof_exact::ExactBudget;
    /// assert_eq!(ExactBudget::auto(4), Some(ExactBudget::new(400)));
    /// assert_eq!(ExactBudget::auto(11), None);
    /// ```
    pub fn auto(destinations: usize) -> Option<ExactBudget> {
        if destinations > Self::MAX_DESTINATIONS {
            return None;
        }
        let node_budget = match destinations {
            0..=6 => 400,
            7..=8 => 120,
            _ => 30,
        };
        Some(ExactBudget { node_budget })
    }
}

/// The exact solver behind the [`Solver`] trait (the paper's "CPLEX"
/// column). With `budget: None` (the default) the per-instance
/// [`ExactBudget::auto`] schedule applies; a fixed budget overrides it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactSolver {
    /// Fixed node budget, or `None` for [`ExactBudget::auto`].
    pub budget: Option<ExactBudget>,
}

impl ExactSolver {
    /// An exact solver with a fixed node budget.
    pub fn with_budget(budget: ExactBudget) -> ExactSolver {
        ExactSolver {
            budget: Some(budget),
        }
    }
}

impl Solver for ExactSolver {
    fn name(&self) -> &'static str {
        "CPLEX*"
    }

    fn solve(
        &self,
        instance: &SofInstance,
        _config: &SofdaConfig,
    ) -> Result<SolveOutcome, SolveError> {
        let d = instance.request.destinations.len();
        let budget = match self.budget {
            Some(b) => b,
            None => ExactBudget::auto(d).ok_or_else(|| {
                SolveError::Infeasible(format!(
                    "{d} destinations exceed the exact solver's envelope of {}",
                    ExactBudget::MAX_DESTINATIONS
                ))
            })?,
        };
        let out = solve_exact(instance, budget.node_budget)
            .map_err(|e| SolveError::Infeasible(e.to_string()))?;
        let cost = out.forest.cost(&instance.network);
        Ok(SolveOutcome {
            forest: out.forest,
            cost,
            stats: SolveStats::default(),
        })
    }

    fn max_destinations(&self) -> Option<usize> {
        match self.budget {
            Some(_) => None,
            None => Some(ExactBudget::MAX_DESTINATIONS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_core::{Network, Request, ServiceChain};
    use sof_graph::{Cost, Graph, NodeId};

    #[test]
    fn auto_schedule_pins_the_thresholds() {
        for d in 0..=6 {
            assert_eq!(ExactBudget::auto(d), Some(ExactBudget::new(400)), "d={d}");
        }
        for d in 7..=8 {
            assert_eq!(ExactBudget::auto(d), Some(ExactBudget::new(120)), "d={d}");
        }
        for d in 9..=10 {
            assert_eq!(ExactBudget::auto(d), Some(ExactBudget::new(30)), "d={d}");
        }
        for d in 11..16 {
            assert_eq!(ExactBudget::auto(d), None, "d={d}");
        }
    }

    fn line_instance(dests: usize) -> SofInstance {
        let n = 4 + dests;
        let mut g = Graph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let mut net = Network::all_switches(g);
        net.make_vm(NodeId::new(1), Cost::new(5.0));
        net.make_vm(NodeId::new(2), Cost::new(1.0));
        SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(0)],
                (4..4 + dests).map(NodeId::new).collect(),
                ServiceChain::with_len(2),
            ),
        )
        .unwrap()
    }

    #[test]
    fn solver_trait_adapter_matches_direct_call() {
        let inst = line_instance(1);
        let via_trait = ExactSolver::default()
            .solve(&inst, &SofdaConfig::default())
            .unwrap();
        let direct = solve_exact(&inst, 400).unwrap();
        assert_eq!(via_trait.cost.total(), direct.cost);
        via_trait.forest.validate(&inst).unwrap();
    }

    #[test]
    fn auto_mode_declines_oversized_groups() {
        let inst = line_instance(11);
        let solver = ExactSolver::default();
        assert!(!solver.supports(&inst));
        assert!(solver.solve(&inst, &SofdaConfig::default()).is_err());
        // A fixed budget lifts the envelope cap.
        let fixed = ExactSolver::with_budget(ExactBudget::new(5));
        assert_eq!(fixed.max_destinations(), None);
        assert!(fixed.supports(&inst));
    }
}

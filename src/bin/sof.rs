//! `sof` — the unified scenario CLI.
//!
//! ```text
//! sof run <preset|spec.toml|spec.json> [options]   run a scenario
//! sof list                                         list bundled presets
//! sof validate <preset|file>... | --all            check specs without running
//! ```
//!
//! `sof run` emits the structured `RunReport` as JSON lines by default
//! (deterministic for a fixed seed and any `--threads`); pass
//! `--format markdown` for the legacy figure tables.

use sof_spec::shim::{apply_overrides, Overrides};
use sof_spec::{render_markdown, run_spec, write_jsonl, RunOptions, ScenarioSpec};
use std::path::Path;
use std::process::exit;

const USAGE: &str = "sof — Service Overlay Forest scenarios

Usage:
  sof run <preset|spec.toml|spec.json> [options]
  sof list
  sof validate <preset|file>... | --all
  sof help

Run options:
  --format <jsonl|markdown>  output format (default jsonl)
  --seeds <N>                override the averaging width
  --seed <N>                 override the base RNG seed
  --limit <N>                truncate every sweep axis to its first N values
  --solvers <A,B,...>        override the solver set
  --nodes <N>                resize the topology (inet family only)
  --requests <N>             override every online group's arrival count
  --threads <N>              worker threads (0 = all cores; overrides SOF_THREADS)
  --timings                  include wall-clock measurements in the JSONL output

Presets are bundled spec files (see `sof list`); anything containing a
path separator or ending in .toml/.json is read from disk.";

fn fatal(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    exit(2);
}

fn load_spec(target: &str) -> ScenarioSpec {
    let looks_like_path = target.contains('/')
        || target.ends_with(".toml")
        || target.ends_with(".json")
        || Path::new(target).exists();
    if looks_like_path {
        match ScenarioSpec::from_path(Path::new(target)) {
            Ok(s) => s,
            Err(e) => fatal(e),
        }
    } else {
        match sof_spec::presets::preset(target) {
            Some(Ok(s)) => s,
            Some(Err(e)) => fatal(format!("bundled preset '{target}' is invalid: {e}")),
            None => fatal(format!(
                "unknown preset '{target}' (run `sof list`, or pass a spec file path)"
            )),
        }
    }
}

fn cmd_run(args: Vec<String>) {
    let mut format = "jsonl".to_string();
    let mut overrides = Overrides::default();
    let mut threads: Option<usize> = None;
    let mut timings = false;
    let mut target: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| fatal(format!("flag '{flag}' is missing its value")))
        };
        match arg.as_str() {
            "--format" => format = value("--format"),
            "--seeds" => overrides.seeds = Some(parse_num(&value("--seeds"), "--seeds")),
            "--seed" => overrides.seed = Some(parse_num(&value("--seed"), "--seed")),
            "--limit" => overrides.limit = Some(parse_num(&value("--limit"), "--limit") as usize),
            "--solvers" => {
                overrides.solvers = Some(
                    value("--solvers")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect(),
                )
            }
            "--nodes" => overrides.nodes = Some(parse_num(&value("--nodes"), "--nodes") as usize),
            "--requests" => {
                overrides.requests = Some(parse_num(&value("--requests"), "--requests") as usize)
            }
            "--threads" => threads = Some(parse_num(&value("--threads"), "--threads") as usize),
            "--timings" => timings = true,
            other if other.starts_with("--") => fatal(format!("unknown flag '{other}'")),
            _ => {
                if target.is_some() {
                    fatal(format!("unexpected extra argument '{arg}'"));
                }
                target = Some(arg);
            }
        }
    }
    let Some(target) = target else {
        fatal("`sof run` needs a preset name or spec file (see `sof list`)");
    };
    if let Some(t) = threads {
        sof_par::set_threads(t);
    }
    let mut spec = load_spec(&target);
    for name in apply_overrides(&mut spec, &overrides) {
        eprintln!(
            "warning: --{name} does not apply to a '{}' workload and was ignored",
            spec.workload.kind()
        );
    }
    if let Err(e) = spec.validate() {
        fatal(e);
    }
    let opts = RunOptions {
        threads: 0,
        timings,
        legacy_notes: false,
    };
    match format.as_str() {
        "jsonl" | "json" => {
            let report = match run_spec(&spec, &opts) {
                Ok(r) => r,
                Err(e) => fatal(e),
            };
            for w in report.warnings() {
                eprintln!("warning: {w}");
            }
            print!("{}", write_jsonl(&report, timings));
        }
        "markdown" | "md" => {
            let report = match run_spec(&spec, &opts) {
                Ok(r) => r,
                Err(e) => fatal(e),
            };
            for w in report.warnings() {
                eprintln!("warning: {w}");
            }
            print!("{}", render_markdown(&report));
        }
        other => fatal(format!(
            "unknown format '{other}' (expected 'jsonl' or 'markdown')"
        )),
    }
}

fn parse_num(v: &str, flag: &str) -> u64 {
    v.parse()
        .unwrap_or_else(|_| fatal(format!("invalid value '{v}' for flag '{flag}'")))
}

fn cmd_list() {
    println!("bundled presets:");
    for name in sof_spec::presets::preset_names() {
        let spec = sof_spec::presets::preset(name)
            .expect("listed preset exists")
            .expect("bundled presets are valid");
        println!("  {name:<22} {}", spec.description);
    }
    println!("\nrun one with `sof run <name>`; validate a file with `sof validate <path>`.");
}

fn cmd_validate(args: Vec<String>) {
    let targets: Vec<String> = if args.iter().any(|a| a == "--all") {
        sof_spec::presets::preset_names()
            .into_iter()
            .map(String::from)
            .collect()
    } else if args.is_empty() {
        fatal("`sof validate` needs preset names / spec files, or --all");
    } else {
        args
    };
    let mut failed = false;
    for target in &targets {
        let looks_like_path = target.contains('/')
            || target.ends_with(".toml")
            || target.ends_with(".json")
            || Path::new(target).exists();
        let result = if looks_like_path {
            ScenarioSpec::from_path(Path::new(target))
        } else {
            match sof_spec::presets::preset(target) {
                Some(r) => r,
                None => {
                    eprintln!("{target}: unknown preset");
                    failed = true;
                    continue;
                }
            }
        };
        match result {
            Ok(spec) => {
                // The round trip is part of the contract: serializing and
                // re-parsing must be the identity.
                match ScenarioSpec::from_toml(&spec.to_toml()) {
                    Ok(again) if again == spec => println!("{target}: ok ({})", spec.name),
                    Ok(_) => {
                        eprintln!("{target}: round trip changed the spec (internal bug)");
                        failed = true;
                    }
                    Err(e) => {
                        eprintln!("{target}: round trip failed: {e}");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("{target}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        exit(1);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        println!("{USAGE}");
        return;
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "run" => cmd_run(args),
        "list" => cmd_list(),
        "validate" => cmd_validate(args),
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => fatal(format!("unknown command '{other}' (try `sof help`)")),
    }
}

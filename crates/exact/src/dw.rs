//! Directed Dreyfus–Wagner over the layered graph: exact minimum-cost
//! arborescence from the root spanning all destination terminals.

use crate::layered::LayeredGraph;
use sof_graph::Cost;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-VM restriction used by the branch-and-bound: which VNF indices a VM
/// may process (`u32` bitmask over chain positions).
#[derive(Clone, Debug, Default)]
pub struct Restrictions {
    /// `allowed[v] = bitmask` (absent = all allowed).
    pub allowed: std::collections::HashMap<usize, u32>,
}

impl Restrictions {
    /// Returns `true` if VM (dense index) `v` may process chain position `i`.
    pub fn permits(&self, v: usize, i: usize) -> bool {
        self.allowed.get(&v).is_none_or(|m| m & (1 << i) != 0)
    }

    /// Restricts `v` to a single position (or none with an empty mask).
    pub fn restrict(&mut self, v: usize, mask: u32) {
        self.allowed.insert(v, mask);
    }
}

/// Result of one relaxed solve.
#[derive(Clone, Debug)]
pub struct Arborescence {
    /// Total cost.
    pub cost: Cost,
    /// Chosen arc indices into [`LayeredGraph::arcs`].
    pub arcs: Vec<usize>,
}

/// Memoizing front-end over [`directed_steiner`]: the relaxation engine.
///
/// Branch-and-bound paths frequently converge on identical restriction
/// maps (restricting VM `a` then `b` meets `b` then `a`; the diving
/// heuristic walks the same keep-smallest-layer restrictions the first
/// child branches re-derive), and `directed_steiner` is a pure function of
/// `(layered graph, restrictions)` — so each distinct restriction set is
/// solved exactly once per engine. Shared across forked child relaxations
/// behind a mutex; hits return the identical `Arborescence`, so results
/// stay bit-identical for any thread count. Hit/miss counters expose how
/// much of the search tree the memo absorbed.
pub struct SteinerRelaxation {
    memo: std::sync::Mutex<std::collections::HashMap<RestrictionKey, Option<Arborescence>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

/// Canonical form of a [`Restrictions`] map: sorted `(vm, mask)` pairs.
type RestrictionKey = Vec<(usize, u32)>;

/// Cache counters of a [`SteinerRelaxation`] engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelaxationStats {
    /// Relaxations answered from the memo.
    pub hits: u64,
    /// Relaxations computed by [`directed_steiner`].
    pub misses: u64,
}

impl Default for SteinerRelaxation {
    fn default() -> SteinerRelaxation {
        SteinerRelaxation::new()
    }
}

impl SteinerRelaxation {
    /// Creates an empty engine (no memoized relaxations).
    pub fn new() -> SteinerRelaxation {
        SteinerRelaxation {
            memo: std::sync::Mutex::new(std::collections::HashMap::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn canon(r: &Restrictions) -> RestrictionKey {
        let mut key: RestrictionKey = r.allowed.iter().map(|(&v, &m)| (v, m)).collect();
        key.sort_unstable();
        key
    }

    /// Solves the relaxation, answering repeated restriction sets from the
    /// memo.
    pub fn solve(&self, lg: &LayeredGraph, r: &Restrictions) -> Option<Arborescence> {
        use std::sync::atomic::Ordering;
        let key = SteinerRelaxation::canon(r);
        if let Some(hit) = self.memo.lock().expect("relax memo lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        // Computed outside the lock: sibling branches with distinct
        // restriction sets must relax in parallel, and a duplicate
        // computation of the same key is deterministic anyway.
        let result = directed_steiner(lg, r);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.memo
            .lock()
            .expect("relax memo lock")
            .insert(key, result.clone());
        result
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> RelaxationStats {
        use std::sync::atomic::Ordering;
        RelaxationStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Choice {
    None,
    Terminal,
    Arc(usize),
    Merge(u32),
}

/// Solves the relaxed problem exactly (no VM-uniqueness): minimum directed
/// Steiner arborescence from `lg.root` spanning all terminals, honoring
/// `restrictions` on processing arcs.
///
/// Returns `None` when some terminal is unreachable under the restrictions.
///
/// Complexity `O(3^k·N + 2^k·M log N)` for `k` terminals.
///
/// # Panics
///
/// Panics if there are more than 20 terminals.
pub fn directed_steiner(lg: &LayeredGraph, restrictions: &Restrictions) -> Option<Arborescence> {
    let k = lg.terminals.len();
    assert!(k <= 20, "too many destinations for the exact solver: {k}");
    if k == 0 {
        return Some(Arborescence {
            cost: Cost::ZERO,
            arcs: vec![],
        });
    }
    let n = lg.len();
    let masks = 1usize << k;
    let mut dp = vec![Cost::INFINITY; masks * n];
    let mut choice = vec![Choice::None; masks * n];

    let arc_allowed = |arc: &crate::layered::Arc| match arc.process {
        None => true,
        Some((vm, i)) => restrictions.permits(vm.index(), i),
    };

    // Reversed-Dijkstra relaxation: dp[S][x] = min over y reachable from x
    // of dist(x→y) + init[y].
    let relax = |dist: &mut [Cost], ch: &mut [Choice]| {
        let mut heap: BinaryHeap<Reverse<(Cost, usize)>> = dist
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(i, &d)| Reverse((d, i)))
            .collect();
        while let Some(Reverse((d, y))) = heap.pop() {
            if d > dist[y] {
                continue;
            }
            for &aid in &lg.into[y] {
                let arc = &lg.arcs[aid];
                if !arc_allowed(arc) {
                    continue;
                }
                let nd = d + arc.cost;
                if nd < dist[arc.from] {
                    dist[arc.from] = nd;
                    ch[arc.from] = Choice::Arc(aid);
                    heap.push(Reverse((nd, arc.from)));
                }
            }
        }
    };

    // Singletons.
    for (ti, &t) in lg.terminals.iter().enumerate() {
        let mask = 1usize << ti;
        let mut d = dp[mask * n..(mask + 1) * n].to_vec();
        let mut c = choice[mask * n..(mask + 1) * n].to_vec();
        d[t] = Cost::ZERO;
        c[t] = Choice::Terminal;
        relax(&mut d, &mut c);
        dp[mask * n..(mask + 1) * n].copy_from_slice(&d);
        choice[mask * n..(mask + 1) * n].copy_from_slice(&c);
    }

    // Larger subsets.
    for mask in 1..masks {
        if mask.count_ones() < 2 {
            continue;
        }
        // Merge complementary sub-solutions at every node.
        {
            let mut sub = (mask - 1) & mask;
            while sub > 0 {
                let other = mask & !sub;
                if sub >= other {
                    for x in 0..n {
                        let a = dp[sub * n + x];
                        let b = dp[other * n + x];
                        if a.is_finite() && b.is_finite() {
                            let c = a + b;
                            if c < dp[mask * n + x] {
                                dp[mask * n + x] = c;
                                choice[mask * n + x] = Choice::Merge(sub as u32);
                            }
                        }
                    }
                }
                sub = (sub - 1) & mask;
            }
        }
        let mut d = dp[mask * n..(mask + 1) * n].to_vec();
        let mut c = choice[mask * n..(mask + 1) * n].to_vec();
        relax(&mut d, &mut c);
        dp[mask * n..(mask + 1) * n].copy_from_slice(&d);
        choice[mask * n..(mask + 1) * n].copy_from_slice(&c);
    }

    let full = masks - 1;
    let best = dp[full * n + lg.root];
    if !best.is_finite() {
        return None;
    }
    // Reconstruct.
    let mut arcs = Vec::new();
    let mut stack = vec![(full, lg.root)];
    while let Some((mask, x)) = stack.pop() {
        match choice[mask * n + x] {
            Choice::Terminal => {}
            Choice::Arc(aid) => {
                arcs.push(aid);
                stack.push((mask, lg.arcs[aid].to));
            }
            Choice::Merge(sub) => {
                stack.push((sub as usize, x));
                stack.push((mask & !(sub as usize), x));
            }
            Choice::None => unreachable!("finite dp entry must have a choice"),
        }
    }
    arcs.sort_unstable();
    arcs.dedup();
    let cost: Cost = arcs.iter().map(|&a| lg.arcs[a].cost).sum();
    debug_assert!(
        cost <= best + Cost::new(1e-9),
        "reconstruction ({cost}) exceeds dp bound ({best})"
    );
    Some(Arborescence { cost, arcs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_core::{Network, Request, ServiceChain, SofInstance};
    use sof_graph::{Graph, NodeId};

    /// Path 0-1-2-3 with VM at 1 (cost 5) and 2 (cost 1); source 0; dest 3.
    fn instance(chain: usize) -> SofInstance {
        let mut g = Graph::with_nodes(4);
        for i in 0..3 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let mut net = Network::all_switches(g);
        net.make_vm(NodeId::new(1), Cost::new(5.0));
        net.make_vm(NodeId::new(2), Cost::new(1.0));
        SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(0)],
                vec![NodeId::new(3)],
                ServiceChain::with_len(chain),
            ),
        )
        .unwrap()
    }

    #[test]
    fn single_vnf_picks_cheap_vm() {
        let inst = instance(1);
        let lg = LayeredGraph::build(&inst, Cost::ZERO);
        let arb = directed_steiner(&lg, &Restrictions::default()).unwrap();
        // Route 0→1→2 (process at 2, cost 1) →3: links 3 + VM 1 = 4.
        assert_eq!(arb.cost, Cost::new(4.0));
    }

    #[test]
    fn relaxation_engine_memoizes_by_canonical_restrictions() {
        let inst = instance(1);
        let lg = LayeredGraph::build(&inst, Cost::ZERO);
        let engine = SteinerRelaxation::new();
        let a = engine.solve(&lg, &Restrictions::default()).unwrap();
        let b = engine.solve(&lg, &Restrictions::default()).unwrap();
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.arcs, b.arcs);
        let mut r = Restrictions::default();
        r.restrict(2, 0);
        let c = engine.solve(&lg, &r).unwrap();
        assert!(c.cost > a.cost);
        // Insertion order into the map must not matter: the same
        // restrictions reached along a different path still hit.
        let mut r2 = Restrictions::default();
        r2.restrict(2, 0);
        let _ = engine.solve(&lg, &r2);
        assert_eq!(engine.stats(), RelaxationStats { hits: 2, misses: 2 });
    }

    #[test]
    fn restriction_forces_expensive_vm() {
        let inst = instance(1);
        let lg = LayeredGraph::build(&inst, Cost::ZERO);
        let mut r = Restrictions::default();
        r.restrict(2, 0); // forbid VM 2 entirely
        let arb = directed_steiner(&lg, &r).unwrap();
        // Must process at VM 1: links 3 + VM 5 = 8.
        assert_eq!(arb.cost, Cost::new(8.0));
        r.restrict(1, 0);
        assert!(directed_steiner(&lg, &r).is_none());
    }

    #[test]
    fn chain_of_two_uses_both_vms() {
        let inst = instance(2);
        let lg = LayeredGraph::build(&inst, Cost::ZERO);
        let arb = directed_steiner(&lg, &Restrictions::default()).unwrap();
        // Both VMs must process (relaxation may reuse one: VM2 twice = links
        // 3 + 2·1 = 5; distinct would cost links 3 + 5 + 1 = 9).
        assert_eq!(arb.cost, Cost::new(5.0));
        let procs: Vec<_> = arb
            .arcs
            .iter()
            .filter_map(|&a| lg.arcs[a].process)
            .collect();
        assert_eq!(procs.len(), 2);
    }

    #[test]
    fn multi_destination_shares_layers() {
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        g.add_edge(NodeId::new(1), NodeId::new(4), Cost::new(1.0));
        let mut net = Network::all_switches(g);
        net.make_vm(NodeId::new(1), Cost::new(1.0));
        let inst = SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(0)],
                vec![NodeId::new(3), NodeId::new(4)],
                ServiceChain::with_len(1),
            ),
        )
        .unwrap();
        let lg = LayeredGraph::build(&inst, Cost::ZERO);
        let arb = directed_steiner(&lg, &Restrictions::default()).unwrap();
        // 0→1 (1), process at 1 (1), then 1→4 (1) and 4→3 (1): total 4.
        assert_eq!(arb.cost, Cost::new(4.0));
    }
}
